//! Structured diagnostics: severities, stable lint codes, spans.
//!
//! Every analyzer pass reports through a [`Report`]. A diagnostic carries
//! a stable code (the `MTB-*` identifiers documented in EXPERIMENTS.md),
//! a [`Severity`], an optional rank and statement-path span, and a
//! human-readable message. The severity policy:
//!
//! * **Error** — the configuration will deadlock, crash, or starve: the
//!   engine would refuse it or never terminate. `mtb lint` exits nonzero.
//! * **Warning** — legal but suspicious: likely a performance or
//!   portability hazard (e.g. a priority pair predicted to *invert* the
//!   imbalance the paper's Section V warns about).
//! * **Info** — stylistic or informational findings.

use mtb_mpisim::Rank;
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Legal but suspicious.
    Warning,
    /// Will not run correctly.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. Codes are append-only: once published they never
/// change meaning (tooling may match on them).
pub mod codes {
    /// Cyclic blocking-receive waits: a wait-for cycle among ranks.
    pub const DEADLOCK_CYCLE: &str = "MTB-DEADLOCK-CYCLE";
    /// A blocking `Recv` (or a `WaitAll` covering an `Irecv`) that no
    /// peer `Send` ever matches.
    pub const UNMATCHED_RECV: &str = "MTB-UNMATCHED-RECV";
    /// A `Send` no receive ever consumes (message leaks; harmless under
    /// the eager protocol but almost certainly a program bug).
    pub const UNMATCHED_SEND: &str = "MTB-UNMATCHED-SEND";
    /// An `Irecv` never completed by a later `WaitAll`.
    pub const ORPHAN_IRECV: &str = "MTB-ORPHAN-IRECV";
    /// Ranks disagree on their collective sequence (count or kind), or a
    /// rank finishes while peers still sit in a collective.
    pub const COLLECTIVE_MISMATCH: &str = "MTB-COLLECTIVE-MISMATCH";
    /// A `to`/`from`/`root` outside `0..n_ranks`.
    pub const RANK_RANGE: &str = "MTB-RANK-RANGE";
    /// A rank sends to itself (legal under the eager protocol if the
    /// send precedes the matching receive, but worth flagging).
    pub const SELF_SEND: &str = "MTB-SELF-SEND";
    /// `WaitAll` with no pending handles (a no-op).
    pub const WAITALL_EMPTY: &str = "MTB-WAITALL-EMPTY";
    /// `Loop { count: 0 }` — the body never executes.
    pub const EMPTY_LOOP: &str = "MTB-EMPTY-LOOP";
    /// A priority value the configured kernel interface cannot set
    /// (Table I privilege rules; `/proc` accepts only 1..=6).
    pub const PRIO_ILLEGAL: &str = "MTB-PRIO-ILLEGAL";
    /// A priority pair that starves one thread (priority 0 stops decode
    /// entirely; 1 against a much higher sibling is effectively starved).
    pub const PRIO_STARVE: &str = "MTB-PRIO-STARVE";
    /// A pair whose priority difference exceeds the dynamic balancer's
    /// bounded-difference limit.
    pub const PRIO_DIFF: &str = "MTB-PRIO-DIFF";
    /// A priority pair the decode-share model predicts will *invert* the
    /// compute imbalance (the paper's case-D hazard).
    pub const PRIO_INVERT: &str = "MTB-PRIO-INVERT";
    /// A non-contiguous share-group (L2-domain) placement collapses the
    /// machine's sharded stepping to a single shard: the run stays
    /// correct but `--jobs` buys no intra-run speedup. The same string is
    /// `mtb_oskernel::SHARD_COLLAPSE_CODE` (the runtime note embedded in
    /// run records).
    pub const SHARD_COLLAPSE: &str = "MTB-SHARD-COLLAPSE";
    /// Two high-ILP ranks co-scheduled on one SMT core with overlapping
    /// unit mixes: both want more than the fair decode share, so pairing
    /// each with a low-ILP rank is predicted to be faster (ILP-aware
    /// co-scheduling).
    pub const ILP_CONFLICT: &str = "MTB-ILP-CONFLICT";
    /// The predicted bottleneck rank does not share a core with a short
    /// rank, wasting the decode slots the short rank's early finish
    /// would donate.
    pub const BOTTLENECK_UNPAIRED: &str = "MTB-BOTTLENECK-UNPAIRED";
    /// A strictly better `(placement, priorities)` plan exists in the
    /// static search space (`mtb suggest` ranks it).
    pub const PLAN_DOMINATED: &str = "MTB-PLAN-DOMINATED";
    /// The dynamic balancer's `max_diff` exceeds the bounded-difference
    /// limit: the decode-share model predicts the penalized thread
    /// collapses superlinearly beyond it (Table IV case D).
    pub const CTRL_DIFF: &str = "MTB-CTRL-DIFF";
    /// The dynamic balancer's EWMA smoothing factor is outside `[0, 1]`
    /// (diverges) or so close to 1 the controller never reacts.
    pub const CTRL_EWMA: &str = "MTB-CTRL-EWMA";
    /// Controller gain/hysteresis ranges predicted to thrash: an
    /// imbalance threshold below 1.0 chases noise, an inverted strong
    /// threshold makes a tier unreachable, a zero cool-off re-adjusts a
    /// just-reverted pair immediately.
    pub const CTRL_THRASH: &str = "MTB-CTRL-THRASH";
    /// A negative revert tolerance reverts every adjustment and freezes
    /// pairs immediately — the controller starves itself.
    pub const CTRL_REVERT: &str = "MTB-CTRL-REVERT";
    /// The controller's decision window is too long to converge within
    /// the app's makespan: walking the priority ladder one audited step
    /// per window (plus one revert/cool-off detour) needs more sync
    /// epochs than the run has, so the policy never reaches its target.
    pub const CTRL_LAG: &str = "MTB-CTRL-LAG";
    /// A cross-core remap is enabled on a pinned placement: level 1 of
    /// the two-level controller would request migrations the deployment
    /// forbids, leaving the saturated pair stuck at its priority cap.
    pub const CTRL_REMAP_PINNED: &str = "MTB-CTRL-REMAP-PINNED";

    /// Every stable code, for the catalog-drift test: each entry must
    /// appear in EXPERIMENTS.md's lint-code catalog and vice versa.
    pub const ALL: &[&str] = &[
        DEADLOCK_CYCLE,
        UNMATCHED_RECV,
        UNMATCHED_SEND,
        ORPHAN_IRECV,
        COLLECTIVE_MISMATCH,
        RANK_RANGE,
        SELF_SEND,
        WAITALL_EMPTY,
        EMPTY_LOOP,
        PRIO_ILLEGAL,
        PRIO_STARVE,
        PRIO_DIFF,
        PRIO_INVERT,
        SHARD_COLLAPSE,
        ILP_CONFLICT,
        BOTTLENECK_UNPAIRED,
        PLAN_DOMINATED,
        CTRL_DIFF,
        CTRL_EWMA,
        CTRL_THRASH,
        CTRL_REVERT,
        CTRL_LAG,
        CTRL_REMAP_PINNED,
    ];
}

/// Check a per-core share-group layout (`groups[i]` = core *i*'s shared
/// domain, `None` = independent) for the non-contiguous placement that
/// forces the machine to advance as one shard. Returns the
/// [`codes::SHARD_COLLAPSE`] warning when a domain reappears after a
/// different domain interrupted it.
pub fn check_share_groups(groups: &[Option<usize>]) -> Option<Diagnostic> {
    let mut seen: Vec<usize> = Vec::new();
    for i in 1..groups.len() {
        let prev = groups[i - 1];
        let cur = groups[i];
        if cur.is_none() || cur != prev {
            if let Some(g) = prev {
                seen.push(g);
            }
            if let Some(g) = cur {
                if seen.contains(&g) {
                    return Some(Diagnostic::new(
                        codes::SHARD_COLLAPSE,
                        Severity::Warning,
                        format!(
                            "share group of core {i} already appeared earlier, \
                             non-contiguously: sharded stepping collapses to one \
                             shard and --jobs cannot speed this run up"
                        ),
                    ));
                }
            }
        }
    }
    None
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`MTB-*`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The rank the finding is about, if rank-specific.
    pub rank: Option<Rank>,
    /// Statement path within the rank's program (see
    /// [`mtb_mpisim::interp::path_string`]), if op-specific.
    pub path: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with no span.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            rank: None,
            path: None,
            message: message.into(),
        }
    }

    /// Attach a rank span.
    pub fn with_rank(mut self, rank: Rank) -> Diagnostic {
        self.rank = Some(rank);
        self
    }

    /// Attach a statement-path span.
    pub fn with_path(mut self, path: impl Into<String>) -> Diagnostic {
        self.path = Some(path.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(rank) = self.rank {
            write!(f, " rank {rank}")?;
            if let Some(path) = &self.path {
                write!(f, " at {path}")?;
            }
        } else if let Some(path) = &self.path {
            write!(f, " at {path}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of a verification run: every diagnostic, in discovery
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Add a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Does the report contain at least one Error?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Does any finding carry `code`?
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "clean: no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Report {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_worst() {
        let mut r = Report::new();
        assert_eq!(r.worst(), None);
        assert!(!r.has_errors());
        r.push(Diagnostic::new(codes::SELF_SEND, Severity::Info, "i"));
        r.push(Diagnostic::new(codes::PRIO_INVERT, Severity::Warning, "w"));
        assert_eq!(r.worst(), Some(Severity::Warning));
        assert!(!r.has_errors());
        r.push(
            Diagnostic::new(codes::DEADLOCK_CYCLE, Severity::Error, "e")
                .with_rank(1)
                .with_path("0/it2/1"),
        );
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_code(codes::DEADLOCK_CYCLE));
        assert!(!r.has_code(codes::PRIO_DIFF));
    }

    #[test]
    fn share_group_check_flags_only_non_contiguous_layouts() {
        // Contiguous pairs: fine.
        assert_eq!(
            check_share_groups(&[Some(1), Some(1), Some(2), Some(2)]),
            None
        );
        // Independent cores: fine.
        assert_eq!(check_share_groups(&[None, None, None]), None);
        // One machine-wide domain: fine (legitimately one shard).
        assert_eq!(check_share_groups(&[Some(9), Some(9), Some(9)]), None);
        // Interleaved domains: the collapse hazard.
        let d = check_share_groups(&[Some(1), Some(2), Some(1), Some(2)])
            .expect("interleaved domains must be flagged");
        assert_eq!(d.code, codes::SHARD_COLLAPSE);
        assert_eq!(d.severity, Severity::Warning);
        // A domain split by an independent core also collapses.
        assert!(check_share_groups(&[Some(1), None, Some(1)]).is_some());
    }

    #[test]
    fn diagnostic_display_includes_span() {
        let d = Diagnostic::new(codes::UNMATCHED_RECV, Severity::Error, "never matched")
            .with_rank(3)
            .with_path("1/it0/2");
        let s = d.to_string();
        assert!(s.contains("error[MTB-UNMATCHED-RECV]"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("1/it0/2"), "{s}");
    }
}
