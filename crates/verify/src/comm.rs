//! Communication-graph checks: a time-free abstract interpretation of the
//! rank programs.
//!
//! Message matching in `mtb_mpisim::comm` is FIFO per `(from, tag)` and
//! independent of arrival *times* — which messages pair up is decided by
//! posting order alone. That makes a time-free executor exact for
//! termination: it runs each rank's symbolically flattened op stream
//! ([`mtb_mpisim::interp::flatten_symbolic`], `DynCompute` opaque) under
//! the same matching, blocking and collective-release rules as the
//! engine, minus the clock. If it finishes, the engine finishes; if it
//! stalls, the engine deadlocks — and the stall is diagnosed into a
//! wait-for cycle, an unmatched receive, or a missed collective.

use crate::diag::{codes, Diagnostic, Report, Severity};
use mtb_mpisim::collective::EpochKind;
use mtb_mpisim::interp::{flatten, flatten_symbolic, path_string, FlatOp, SymOp, SymOpKind};
use mtb_mpisim::program::Stmt;
use mtb_mpisim::{Program, Rank, Tag};

/// Run every communication check over one program per rank.
pub fn check_programs(programs: &[Program]) -> Report {
    let mut report = Report::new();
    let n = programs.len();

    // Structural pass over the statement trees (catches what flattening
    // erases, e.g. zero-count loops).
    for (rank, prog) in programs.iter().enumerate() {
        lint_stmts(rank, &prog.body, &mut Vec::new(), &mut report);
    }

    let sym: Vec<Vec<SymOp>> = programs.iter().map(flatten_symbolic).collect();

    // Rank-range and self-send scans.
    for (rank, ops) in sym.iter().enumerate() {
        for s in ops {
            let SymOpKind::Op(op) = &s.op else { continue };
            let (target, role) = match op {
                FlatOp::Send { to, .. } | FlatOp::Isend { to, .. } => (*to, "sends to"),
                FlatOp::Recv { from, .. } | FlatOp::Irecv { from, .. } => (*from, "receives from"),
                FlatOp::Bcast { root, .. } | FlatOp::Reduce { root, .. } => (*root, "roots at"),
                _ => continue,
            };
            if target >= n {
                report.push(
                    Diagnostic::new(
                        codes::RANK_RANGE,
                        Severity::Error,
                        format!("rank {rank} {role} rank {target}, but only ranks 0..{n} exist"),
                    )
                    .with_rank(rank)
                    .with_path(path_string(&s.path)),
                );
            } else if target == rank && matches!(op, FlatOp::Send { .. } | FlatOp::Isend { .. }) {
                report.push(
                    Diagnostic::new(
                        codes::SELF_SEND,
                        Severity::Info,
                        format!(
                            "rank {rank} sends to itself; legal under the eager protocol \
                             only if the send precedes the matching receive"
                        ),
                    )
                    .with_rank(rank)
                    .with_path(path_string(&s.path)),
                );
            }
        }
    }

    // Collective-sequence agreement (the engine refuses mismatches up
    // front; the abstract executor assumes agreement).
    check_collectives(&sym, &mut report);

    if report.has_errors() {
        // The engine would refuse this configuration before running;
        // executing the abstract machine could index out of range.
        return report;
    }

    Executor::new(&sym).run(&mut report);
    report
}

/// Walk a statement tree for structural lints.
fn lint_stmts(rank: Rank, body: &[Stmt], path: &mut Vec<String>, report: &mut Report) {
    for (i, stmt) in body.iter().enumerate() {
        if let Stmt::Loop { count, body } = stmt {
            path.push(i.to_string());
            if *count == 0 {
                report.push(
                    Diagnostic::new(
                        codes::EMPTY_LOOP,
                        Severity::Info,
                        format!("rank {rank} has a loop with count 0; its body never runs"),
                    )
                    .with_rank(rank)
                    .with_path(path.join("/")),
                );
            } else {
                lint_stmts(rank, body, path, report);
            }
            path.pop();
        }
    }
}

/// Compare every rank's collective sequence: counts, epoch kinds, and
/// (informationally) the concrete op used.
fn check_collectives(sym: &[Vec<SymOp>], report: &mut Report) {
    let flat_collectives: Vec<Vec<(&FlatOp, String)>> = sym
        .iter()
        .map(|ops| {
            ops.iter()
                .filter_map(|s| match &s.op {
                    SymOpKind::Op(
                        op @ (FlatOp::Barrier
                        | FlatOp::AllReduce { .. }
                        | FlatOp::Bcast { .. }
                        | FlatOp::Reduce { .. }),
                    ) => Some((op, path_string(&s.path))),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let counts: Vec<usize> = flat_collectives.iter().map(Vec::len).collect();
    if counts.windows(2).any(|w| w[0] != w[1]) {
        report.push(Diagnostic::new(
            codes::COLLECTIVE_MISMATCH,
            Severity::Error,
            format!(
                "ranks disagree on how many collectives they join: {counts:?} — \
                 some rank skips a barrier/allreduce/bcast/reduce its peers reach"
            ),
        ));
        return;
    }
    let Some((first, rest)) = flat_collectives.split_first() else {
        return;
    };
    for (off, seq) in rest.iter().enumerate() {
        let rank_b = off + 1;
        for (epoch, ((op_a, _), (op_b, path_b))) in first.iter().zip(seq.iter()).enumerate() {
            let ka = kind_of(op_a);
            let kb = kind_of(op_b);
            if ka != kb {
                report.push(
                    Diagnostic::new(
                        codes::COLLECTIVE_MISMATCH,
                        Severity::Error,
                        format!(
                            "collective #{epoch}: rank 0 joins {op_a:?} but rank {rank_b} \
                             joins {op_b:?} — incompatible synchronization kinds"
                        ),
                    )
                    .with_rank(rank_b)
                    .with_path(path_b.clone()),
                );
            } else if std::mem::discriminant(*op_a) != std::mem::discriminant(*op_b) {
                // Barrier vs AllReduce: same AllToAll epoch, engine-legal,
                // but almost certainly unintended in a real program.
                report.push(
                    Diagnostic::new(
                        codes::COLLECTIVE_MISMATCH,
                        Severity::Warning,
                        format!(
                            "collective #{epoch}: rank 0 calls {op_a:?} while rank {rank_b} \
                             calls {op_b:?}; both synchronize all-to-all so the run \
                             completes, but mixing them is suspicious"
                        ),
                    )
                    .with_rank(rank_b)
                    .with_path(path_b.clone()),
                );
            }
        }
    }
}

fn kind_of(op: &FlatOp) -> EpochKind {
    match op {
        FlatOp::Barrier | FlatOp::AllReduce { .. } => EpochKind::AllToAll,
        FlatOp::Bcast { root, .. } => EpochKind::FromRoot { root: *root },
        FlatOp::Reduce { root, .. } => EpochKind::ToRoot { root: *root },
        other => unreachable!("not a collective: {other:?}"),
    }
}

/// What a rank is blocked on in the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Run,
    BlockRecv { hidx: usize },
    BlockWaitAll,
    BlockEpoch { idx: usize },
    Done,
}

/// An outstanding receive handle (isend handles complete instantly under
/// the eager protocol and are not tracked).
struct AbsHandle {
    from: Rank,
    tag: Tag,
    matched: bool,
    /// Posted by a blocking `Recv` (consumed semantically even though the
    /// engine only clears it at the next `WaitAll`).
    blocking: bool,
    path: String,
}

struct AbsEpoch {
    kind: EpochKind,
    arrived: Vec<Rank>,
}

/// The time-free abstract machine.
struct Executor<'a> {
    ops: &'a [Vec<SymOp>],
    n: usize,
    pc: Vec<usize>,
    state: Vec<St>,
    handles: Vec<Vec<AbsHandle>>,
    /// Per receiving rank: deposited-but-unclaimed messages, in order.
    unexpected: Vec<Vec<(Rank, Tag, String)>>,
    epochs: Vec<AbsEpoch>,
    next_epoch: Vec<usize>,
}

impl<'a> Executor<'a> {
    fn new(ops: &'a [Vec<SymOp>]) -> Executor<'a> {
        let n = ops.len();
        Executor {
            ops,
            n,
            pc: vec![0; n],
            state: vec![St::Run; n],
            handles: (0..n).map(|_| Vec::new()).collect(),
            unexpected: vec![Vec::new(); n],
            epochs: Vec::new(),
            next_epoch: vec![0; n],
        }
    }

    fn run(mut self, report: &mut Report) {
        loop {
            let mut progress = false;
            for rank in 0..self.n {
                while self.step(rank, report) {
                    progress = true;
                }
            }
            if self.state.iter().all(|s| *s == St::Done) {
                self.finish(report);
                return;
            }
            if !progress {
                self.diagnose_stall(report);
                return;
            }
        }
    }

    /// Advance `rank` by one transition if possible.
    fn step(&mut self, rank: Rank, report: &mut Report) -> bool {
        match self.state[rank] {
            St::Done => false,
            St::BlockRecv { hidx } => {
                if self.handles[rank][hidx].matched {
                    self.state[rank] = St::Run;
                    true
                } else {
                    false
                }
            }
            St::BlockWaitAll => {
                if self.handles[rank].iter().all(|h| h.matched) {
                    self.handles[rank].clear();
                    self.state[rank] = St::Run;
                    true
                } else {
                    false
                }
            }
            St::BlockEpoch { idx } => {
                if self.epoch_released(idx, rank) {
                    self.state[rank] = St::Run;
                    true
                } else {
                    false
                }
            }
            St::Run => {
                let Some(sym) = self.ops[rank].get(self.pc[rank]) else {
                    self.state[rank] = St::Done;
                    return true;
                };
                let path = path_string(&sym.path);
                self.pc[rank] += 1;
                let SymOpKind::Op(op) = &sym.op else {
                    return true; // opaque compute: no comm effect
                };
                match op {
                    FlatOp::Compute(_) | FlatOp::Phase(_) => {}
                    FlatOp::Send { to, tag, .. } | FlatOp::Isend { to, tag, .. } => {
                        self.post_send(rank, *to, *tag, path);
                    }
                    FlatOp::Irecv { from, tag } => {
                        self.post_irecv(rank, *from, *tag, false, path);
                    }
                    FlatOp::Recv { from, tag } => {
                        let hidx = self.post_irecv(rank, *from, *tag, true, path);
                        if !self.handles[rank][hidx].matched {
                            self.state[rank] = St::BlockRecv { hidx };
                        }
                    }
                    FlatOp::WaitAll => {
                        if self.handles[rank].is_empty() {
                            report.push(
                                Diagnostic::new(
                                    codes::WAITALL_EMPTY,
                                    Severity::Info,
                                    format!(
                                        "rank {rank} calls waitall with no pending \
                                         handles (a no-op)"
                                    ),
                                )
                                .with_rank(rank)
                                .with_path(path),
                            );
                        } else if self.handles[rank].iter().all(|h| h.matched) {
                            self.handles[rank].clear();
                        } else {
                            self.state[rank] = St::BlockWaitAll;
                        }
                    }
                    FlatOp::Barrier
                    | FlatOp::AllReduce { .. }
                    | FlatOp::Bcast { .. }
                    | FlatOp::Reduce { .. } => {
                        let idx = self.next_epoch[rank];
                        self.next_epoch[rank] += 1;
                        if self.epochs.len() <= idx {
                            self.epochs.push(AbsEpoch {
                                kind: kind_of(op),
                                arrived: Vec::new(),
                            });
                        }
                        self.epochs[idx].arrived.push(rank);
                        if !self.epoch_released(idx, rank) {
                            self.state[rank] = St::BlockEpoch { idx };
                        }
                    }
                }
                true
            }
        }
    }

    fn post_send(&mut self, from: Rank, to: Rank, tag: Tag, path: String) {
        // Match the receiver's oldest unmatched posted receive for this
        // (from, tag), exactly like `CommState::post_send`.
        if let Some(h) = self.handles[to]
            .iter_mut()
            .find(|h| !h.matched && h.from == from && h.tag == tag)
        {
            h.matched = true;
        } else {
            self.unexpected[to].push((from, tag, path));
        }
    }

    fn post_irecv(
        &mut self,
        rank: Rank,
        from: Rank,
        tag: Tag,
        blocking: bool,
        path: String,
    ) -> usize {
        let matched = if let Some(pos) = self.unexpected[rank]
            .iter()
            .position(|&(f, t, _)| f == from && t == tag)
        {
            self.unexpected[rank].remove(pos);
            true
        } else {
            false
        };
        self.handles[rank].push(AbsHandle {
            from,
            tag,
            matched,
            blocking,
            path,
        });
        self.handles[rank].len() - 1
    }

    fn epoch_released(&self, idx: usize, rank: Rank) -> bool {
        let e = &self.epochs[idx];
        match e.kind {
            EpochKind::AllToAll => e.arrived.len() == self.n,
            EpochKind::FromRoot { root } => e.arrived.contains(&root),
            EpochKind::ToRoot { root } => rank != root || e.arrived.len() == self.n,
        }
    }

    /// The ranks `rank` cannot proceed without.
    fn waiting_on(&self, rank: Rank) -> Vec<Rank> {
        let mut peers: Vec<Rank> = match self.state[rank] {
            St::BlockRecv { hidx } => vec![self.handles[rank][hidx].from],
            St::BlockWaitAll => self.handles[rank]
                .iter()
                .filter(|h| !h.matched)
                .map(|h| h.from)
                .collect(),
            St::BlockEpoch { idx } => {
                let e = &self.epochs[idx];
                match e.kind {
                    EpochKind::AllToAll => (0..self.n).filter(|r| !e.arrived.contains(r)).collect(),
                    EpochKind::FromRoot { root } => vec![root],
                    EpochKind::ToRoot { root } => {
                        if rank == root {
                            (0..self.n).filter(|r| !e.arrived.contains(r)).collect()
                        } else {
                            Vec::new()
                        }
                    }
                }
            }
            St::Run | St::Done => Vec::new(),
        };
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// No rank can advance: turn the wait-for graph into diagnostics.
    fn diagnose_stall(&self, report: &mut Report) {
        let waits: Vec<Vec<Rank>> = (0..self.n).map(|r| self.waiting_on(r)).collect();
        let before = report.count(Severity::Error);

        let cycle = find_cycle(&waits);
        if !cycle.is_empty() {
            let chain: Vec<String> = cycle
                .iter()
                .zip(cycle.iter().cycle().skip(1))
                .map(|(a, b)| format!("rank {a} waits on rank {b}"))
                .collect();
            let mut d = Diagnostic::new(
                codes::DEADLOCK_CYCLE,
                Severity::Error,
                format!("cyclic wait among ranks {cycle:?}: {}", chain.join(", ")),
            )
            .with_rank(cycle[0]);
            if let Some(p) = self.blocking_path(cycle[0]) {
                d = d.with_path(p);
            }
            report.push(d);
        }

        for (rank, rank_waits) in waits.iter().enumerate() {
            let done_peers: Vec<Rank> = rank_waits
                .iter()
                .copied()
                .filter(|&p| self.state[p] == St::Done)
                .collect();
            if done_peers.is_empty() {
                continue;
            }
            match self.state[rank] {
                St::BlockRecv { .. } | St::BlockWaitAll => {
                    for h in self.handles[rank].iter().filter(|h| !h.matched) {
                        if done_peers.contains(&h.from) {
                            report.push(
                                Diagnostic::new(
                                    codes::UNMATCHED_RECV,
                                    Severity::Error,
                                    format!(
                                        "rank {rank} waits for a message from rank {} \
                                         (tag {}) but rank {} has finished without \
                                         sending it",
                                        h.from, h.tag, h.from
                                    ),
                                )
                                .with_rank(rank)
                                .with_path(h.path.clone()),
                            );
                        }
                    }
                }
                St::BlockEpoch { idx } => {
                    let mut d = Diagnostic::new(
                        codes::COLLECTIVE_MISMATCH,
                        Severity::Error,
                        format!(
                            "rank {rank} waits in collective #{idx} for rank(s) \
                             {done_peers:?}, which finished without joining"
                        ),
                    )
                    .with_rank(rank);
                    if let Some(p) = self.blocking_path(rank) {
                        d = d.with_path(p);
                    }
                    report.push(d);
                }
                _ => {}
            }
        }

        if report.count(Severity::Error) == before {
            // Guarantee: a stall always yields at least one Error.
            report.push(Diagnostic::new(
                codes::DEADLOCK_CYCLE,
                Severity::Error,
                "no rank can make progress (unclassified stall)".to_string(),
            ));
        }
    }

    /// The path of the op `rank` is currently blocked at (pc was already
    /// advanced past it).
    fn blocking_path(&self, rank: Rank) -> Option<String> {
        self.pc[rank]
            .checked_sub(1)
            .and_then(|i| self.ops[rank].get(i))
            .map(|s| path_string(&s.path))
    }

    /// All ranks finished: report leaked messages and orphan handles.
    fn finish(&self, report: &mut Report) {
        for (to, msgs) in self.unexpected.iter().enumerate() {
            for (from, tag, path) in msgs {
                report.push(
                    Diagnostic::new(
                        codes::UNMATCHED_SEND,
                        Severity::Warning,
                        format!(
                            "message from rank {from} to rank {to} (tag {tag}) is \
                             never received"
                        ),
                    )
                    .with_rank(*from)
                    .with_path(path.clone()),
                );
            }
        }
        for (rank, handles) in self.handles.iter().enumerate() {
            for h in handles.iter().filter(|h| !h.blocking) {
                report.push(
                    Diagnostic::new(
                        codes::ORPHAN_IRECV,
                        Severity::Warning,
                        format!(
                            "rank {rank} finished with an irecv (from rank {}, tag {}) \
                             never completed by a waitall",
                            h.from, h.tag
                        ),
                    )
                    .with_rank(rank)
                    .with_path(h.path.clone()),
                );
            }
        }
    }
}

/// DFS cycle search over the wait-for graph; mirrors the engine's
/// diagnostic (`mtb_mpisim::engine`), including one-rank self-loops.
fn find_cycle(waits: &[Vec<Rank>]) -> Vec<Rank> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    fn visit(
        r: Rank,
        waits: &[Vec<Rank>],
        colour: &mut [Colour],
        stack: &mut Vec<Rank>,
    ) -> Option<Vec<Rank>> {
        colour[r] = Colour::Grey;
        stack.push(r);
        for &next in &waits[r] {
            match colour[next] {
                Colour::Grey => {
                    let start = stack.iter().position(|&x| x == next).unwrap_or(0);
                    return Some(stack[start..].to_vec());
                }
                Colour::White => {
                    if let Some(c) = visit(next, waits, colour, stack) {
                        return Some(c);
                    }
                }
                Colour::Black => {}
            }
        }
        stack.pop();
        colour[r] = Colour::Black;
        None
    }
    let mut colour = vec![Colour::White; waits.len()];
    for r in 0..waits.len() {
        if colour[r] == Colour::White {
            let mut stack = Vec::new();
            if let Some(c) = visit(r, waits, &mut colour, &mut stack) {
                return c;
            }
        }
    }
    Vec::new()
}

/// Per-rank work summary derived from a concrete flatten: total compute
/// instructions and the profile of the dominant compute phase. Feeds the
/// priority-inversion lint.
pub fn rank_loads(programs: &[Program]) -> Vec<crate::prio::RankLoad> {
    programs
        .iter()
        .enumerate()
        .map(|(rank, prog)| {
            let mut work: u64 = 0;
            let mut dominant: Option<(u64, mtb_smtsim::model::WorkloadProfile)> = None;
            for op in flatten(prog, rank) {
                if let FlatOp::Compute(ws) = op {
                    work += ws.instructions;
                    if dominant.is_none_or(|(w, _)| ws.instructions > w) {
                        dominant = Some((ws.instructions, ws.workload.profile));
                    }
                }
            }
            crate::prio::RankLoad {
                work,
                profile: dominant
                    .map(|(_, p)| p)
                    .unwrap_or_else(|| mtb_smtsim::model::WorkloadProfile::new(2.0, 0.1, 0.0)),
            }
        })
        .collect()
}
