//! Resource-profile inference: abstract interpretation of each rank's
//! statement stream into per-phase resource profiles.
//!
//! [`crate::comm::rank_loads`] reduces a rank to a single `(work,
//! profile)` pair — enough for the pairwise inversion lint, too coarse
//! for placement search. This module keeps the *structure*: the flat
//! operation stream is segmented at synchronization epochs (`Barrier`,
//! `AllReduce`, `Bcast`, `Reduce` — the same boundaries
//! [`mtb_mpisim::interp::count_sync_epochs`] counts), and each segment is
//! summarized into a [`PhaseProfile`]:
//!
//! * the **unit mix** — the instruction-weighted fraction of fixed-point,
//!   floating-point, load/store and branch instructions (from each
//!   workload's [`StreamSpec`]), i.e. which execution units the phase
//!   occupies;
//! * **boundedness** — which bound of the analytic IPC model binds:
//!   decode bandwidth, a single unit class, the dependency chain, or
//!   memory latency (a dependency bound whose average latency is
//!   dominated by misses past the L2);
//! * an **ILP class** per *ILP Aware Scheduling*: threads whose
//!   standalone IPC exceeds the fair half of the decode bandwidth are
//!   High (they want more than an equal SMT share), threads below 1 IPC
//!   are Low (latency-bound, cheap to co-schedule), the rest Medium.
//!
//! The co-run interference score combines two mixes through a
//! **sublinear response curve**: doubling the unit-mix overlap less than
//! doubles the observed slowdown, because issue slots lost to a busy
//! unit are partially hidden by the out-of-order window. The score
//! drives the `MTB-ILP-CONFLICT` lint and the pairing heuristics in
//! [`crate::plan`]; the makespan *numbers* come from the calibrated
//! mesoscale equations, not from this curve.

use mtb_mpisim::interp::{flatten, FlatOp};
use mtb_mpisim::Program;
use mtb_smtsim::inst::{
    InstClass, StreamSpec, BR_LAT, BR_MISS_PENALTY, BR_MISS_RATE, DECODE_WIDTH, FP_LAT, FX_LAT,
    L1_LAT, L2_BYTES, L2_LAT, MEM_LAT, UNITS,
};
use mtb_smtsim::model::WorkloadProfile;

/// ILP class per *ILP Aware Scheduling*: how much of the core's decode
/// bandwidth the thread can convert into retirement when running alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IlpClass {
    /// Standalone IPC below 1: latency-bound, leaves most slots unused.
    Low,
    /// In between: uses roughly its fair SMT share.
    Medium,
    /// Standalone IPC above half the decode width: wants more than an
    /// equal SMT share and suffers most from decode-share cuts.
    High,
}

impl IlpClass {
    /// Classify a standalone IPC against the decode bandwidth.
    pub fn of_ipc(ipc_st: f64) -> IlpClass {
        if ipc_st > DECODE_WIDTH / 2.0 {
            IlpClass::High
        } else if ipc_st < 1.0 {
            IlpClass::Low
        } else {
            IlpClass::Medium
        }
    }
}

impl std::fmt::Display for IlpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpClass::Low => write!(f, "low-ILP"),
            IlpClass::Medium => write!(f, "medium-ILP"),
            IlpClass::High => write!(f, "high-ILP"),
        }
    }
}

/// Which bound of the analytic IPC model binds a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundedness {
    /// The front end: the phase retires at the decode width.
    Decode,
    /// One execution-unit class saturates first.
    Unit(InstClass),
    /// The dependency chain limits overlap (short `dep_dist`).
    Dependency,
    /// A dependency bound whose latency is dominated by misses past the
    /// L2 — the memory-bound regime.
    Memory,
}

impl std::fmt::Display for Boundedness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Boundedness::Decode => write!(f, "decode-bound"),
            Boundedness::Unit(InstClass::Fx) => write!(f, "integer-unit-bound"),
            Boundedness::Unit(InstClass::Fp) => write!(f, "FPU-bound"),
            Boundedness::Unit(InstClass::Ls) => write!(f, "load/store-unit-bound"),
            Boundedness::Unit(InstClass::Br) => write!(f, "branch-unit-bound"),
            Boundedness::Dependency => write!(f, "dependency-bound"),
            Boundedness::Memory => write!(f, "memory-bound"),
        }
    }
}

/// One synchronization-epoch segment of a rank's compute.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Sync-epoch index the phase *precedes* (the trailing segment after
    /// the last sync op gets the next index).
    pub epoch: usize,
    /// Compute instructions in the segment.
    pub work: u64,
    /// Instruction-weighted unit mix, indexed by [`InstClass::index`].
    pub mix: [f64; 4],
    /// Mesoscale profile of the segment's dominant workload.
    pub profile: WorkloadProfile,
    /// The binding constraint of the dominant workload.
    pub bound: Boundedness,
    /// ILP class of the segment.
    pub ilp: IlpClass,
}

/// A rank's inferred resource profile: per-phase segments plus
/// whole-program aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// Rank index.
    pub rank: usize,
    /// Total compute instructions.
    pub work: u64,
    /// Per-sync-epoch segments (phases with zero compute are kept so
    /// epoch indices align across ranks).
    pub phases: Vec<PhaseProfile>,
    /// Instruction-weighted whole-program unit mix.
    pub mix: [f64; 4],
    /// Mesoscale profile of the dominant workload (same selection rule
    /// as [`crate::comm::rank_loads`]).
    pub profile: WorkloadProfile,
    /// Binding constraint of the dominant workload.
    pub bound: Boundedness,
    /// Whole-program ILP class.
    pub ilp: IlpClass,
}

impl RankProfile {
    /// The rank's load summary, for the pairwise lints.
    pub fn load(&self) -> crate::prio::RankLoad {
        crate::prio::RankLoad {
            work: self.work,
            profile: self.profile,
        }
    }
}

/// The profile a compute-free rank (or phase) reports: the MPI busy-wait
/// spin loop, matching the fallback in [`crate::comm::rank_loads`].
fn spin() -> WorkloadProfile {
    WorkloadProfile::new(2.0, 0.1, 0.0)
}

/// Classify which analytic bound binds a stream spec, mirroring the
/// bound combination in [`StreamSpec::profile`].
pub fn classify_bound(spec: &StreamSpec) -> Boundedness {
    let f = spec.fractions();
    let miss = spec.miss_profile();
    let avg_ls_lat = L1_LAT + miss.l1_miss * (L2_LAT + miss.l2_miss * MEM_LAT);
    let avg_br_lat = BR_LAT + BR_MISS_RATE * BR_MISS_PENALTY;
    let lats = [FX_LAT, FP_LAT, avg_ls_lat, avg_br_lat];
    let avg_lat: f64 = f.iter().zip(lats).map(|(fr, l)| fr * l).sum();

    let dep_bound = f64::from(spec.dep_dist.max(1)) / avg_lat.max(1.0);
    let (unit_class, unit_bound) = InstClass::ALL
        .iter()
        .map(|&c| {
            let fr = f[c.index()];
            let b = if fr <= 0.0 {
                f64::INFINITY
            } else {
                UNITS[c.index()] / fr
            };
            (c, b)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("four classes");

    if dep_bound <= unit_bound && dep_bound <= DECODE_WIDTH {
        // Dependency-bound; call it memory-bound when the latency term is
        // dominated by misses that leave the L2.
        let mem_latency = f[InstClass::Ls.index()] * miss.l1_miss * miss.l2_miss * MEM_LAT;
        if spec.working_set > L2_BYTES && mem_latency > avg_lat * 0.5 {
            Boundedness::Memory
        } else {
            Boundedness::Dependency
        }
    } else if unit_bound <= DECODE_WIDTH {
        Boundedness::Unit(unit_class)
    } else {
        Boundedness::Decode
    }
}

/// Infer per-phase resource profiles for every rank by abstractly
/// interpreting the concrete flat operation stream. Deterministic: the
/// result is a pure function of the programs.
pub fn infer_profiles(programs: &[Program]) -> Vec<RankProfile> {
    programs
        .iter()
        .enumerate()
        .map(|(rank, prog)| infer_rank(rank, prog))
        .collect()
}

/// Accumulates one phase until a sync boundary closes it.
#[derive(Default)]
struct PhaseAcc {
    work: u64,
    weighted_mix: [f64; 4],
    dominant: Option<(u64, StreamSpec, WorkloadProfile)>,
}

impl PhaseAcc {
    fn add(&mut self, ws: &mtb_mpisim::program::WorkSpec) {
        self.work += ws.instructions;
        let f = ws.workload.stream.fractions();
        for (acc, fr) in self.weighted_mix.iter_mut().zip(f) {
            *acc += fr * ws.instructions as f64;
        }
        if self
            .dominant
            .as_ref()
            .is_none_or(|(w, _, _)| ws.instructions > *w)
        {
            self.dominant = Some((ws.instructions, ws.workload.stream, ws.workload.profile));
        }
    }

    fn finish(self, epoch: usize) -> PhaseProfile {
        let mix = if self.work > 0 {
            let mut m = self.weighted_mix;
            for v in &mut m {
                *v /= self.work as f64;
            }
            m
        } else {
            StreamSpec::balanced(0).fractions()
        };
        let (profile, bound) = match &self.dominant {
            Some((_, spec, prof)) => (*prof, classify_bound(spec)),
            None => (spin(), Boundedness::Decode),
        };
        PhaseProfile {
            epoch,
            work: self.work,
            mix,
            ilp: IlpClass::of_ipc(profile.ipc_st),
            profile,
            bound,
        }
    }
}

fn infer_rank(rank: usize, prog: &Program) -> RankProfile {
    let mut phases = Vec::new();
    let mut acc = PhaseAcc::default();
    for op in flatten(prog, rank) {
        match op {
            FlatOp::Compute(ws) => acc.add(&ws),
            FlatOp::Barrier
            | FlatOp::AllReduce { .. }
            | FlatOp::Bcast { .. }
            | FlatOp::Reduce { .. } => {
                let epoch = phases.len();
                phases.push(std::mem::take(&mut acc).finish(epoch));
            }
            _ => {}
        }
    }
    // Trailing segment after the last sync op (often empty).
    let epoch = phases.len();
    phases.push(acc.finish(epoch));

    // Whole-program aggregates over the phases.
    let work: u64 = phases.iter().map(|p| p.work).sum();
    let mut mix = [0.0f64; 4];
    if work > 0 {
        for p in &phases {
            for (m, v) in mix.iter_mut().zip(p.mix) {
                *m += v * p.work as f64;
            }
        }
        for v in &mut mix {
            *v /= work as f64;
        }
    } else {
        mix = StreamSpec::balanced(0).fractions();
    }
    let dominant = phases
        .iter()
        .max_by_key(|p| p.work)
        .expect("at least the trailing phase");
    let (profile, bound) = if work > 0 {
        (dominant.profile, dominant.bound)
    } else {
        (spin(), Boundedness::Decode)
    };
    RankProfile {
        rank,
        work,
        phases,
        mix,
        ilp: IlpClass::of_ipc(profile.ipc_st),
        profile,
        bound,
    }
}

/// Exponent of the sublinear unit-bound response curve: observed co-run
/// slowdown grows as `overlap^GAMMA`, with `GAMMA < 1` because the
/// out-of-order window hides part of every additional unit conflict.
pub const RESPONSE_GAMMA: f64 = 0.5;

/// Co-run interference score in `[0, 1]`: how much two unit mixes fight
/// over the same execution units, through the sublinear response curve.
/// `1.0` = both streams queue on identical saturated units; `0.0` = the
/// mixes are disjoint.
pub fn corun_interference(a: &RankProfile, b: &RankProfile) -> f64 {
    // Per-class pressure = fraction of the class's unit bandwidth each
    // thread would consume alone; the overlap is what both want at once.
    let overlap: f64 = (0..4)
        .map(|c| {
            let pa = (a.mix[c] * a.profile.ipc_st / UNITS[c]).min(1.0);
            let pb = (b.mix[c] * b.profile.ipc_st / UNITS[c]).min(1.0);
            pa.min(pb)
        })
        .sum::<f64>()
        .min(1.0);
    overlap.powf(RESPONSE_GAMMA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtb_mpisim::program::WorkSpec;
    use mtb_mpisim::ProgramBuilder;
    use mtb_smtsim::model::Workload;

    fn wl(spec: StreamSpec) -> Workload {
        Workload::from_spec("t", spec)
    }

    #[test]
    fn phases_split_at_sync_epochs() {
        let prog = ProgramBuilder::new()
            .repeat(3, |b| {
                b.compute(WorkSpec::new(wl(StreamSpec::balanced(1)), 1000))
                    .barrier()
            })
            .build();
        let p = infer_profiles(&[prog]).remove(0);
        // Three barrier-closed phases plus the empty trailing segment.
        assert_eq!(p.phases.len(), 4);
        assert_eq!(p.phases[0].work, 1000);
        assert_eq!(p.phases[3].work, 0);
        assert_eq!(p.work, 3000);
        assert_eq!(
            p.phases.iter().map(|ph| ph.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn boundedness_matches_the_stream_archetypes() {
        assert_eq!(
            classify_bound(&StreamSpec::fpu_bound(0)),
            Boundedness::Dependency,
            "fpu_bound: dep_dist 2 against 6-cycle FP latency"
        );
        assert_eq!(
            classify_bound(&StreamSpec::pointer_chase(0)),
            Boundedness::Memory
        );
        // `frontend_bound` is integer-heavy enough that the two FX units
        // saturate just before the 5-wide decode does — still a high-ILP,
        // decode-share-sensitive stream.
        assert_eq!(
            classify_bound(&StreamSpec::frontend_bound(0)),
            Boundedness::Unit(InstClass::Fx)
        );
    }

    #[test]
    fn ilp_classes_bracket_the_fair_share() {
        assert_eq!(IlpClass::of_ipc(3.0), IlpClass::High);
        assert_eq!(IlpClass::of_ipc(2.0), IlpClass::Medium);
        assert_eq!(IlpClass::of_ipc(0.4), IlpClass::Low);
        let chase = StreamSpec::pointer_chase(0).profile();
        assert_eq!(IlpClass::of_ipc(chase.ipc_st), IlpClass::Low);
        let fe = StreamSpec::frontend_bound(0).profile();
        assert_eq!(IlpClass::of_ipc(fe.ipc_st), IlpClass::High);
    }

    #[test]
    fn mix_is_instruction_weighted() {
        // 3/4 of the instructions are pure-FP, 1/4 balanced.
        let prog = ProgramBuilder::new()
            .compute(WorkSpec::new(wl(StreamSpec::fpu_bound(0)), 3000))
            .compute(WorkSpec::new(wl(StreamSpec::balanced(0)), 1000))
            .build();
        let p = infer_profiles(&[prog]).remove(0);
        let fp = p.mix[InstClass::Fp.index()];
        let expect = 0.75 * 0.8 + 0.25 * (2.0 / 11.0);
        assert!((fp - expect).abs() < 1e-9, "fp mix {fp} vs {expect}");
    }

    #[test]
    fn interference_is_high_for_twins_low_for_disjoint() {
        let twins = infer_profiles(&[
            ProgramBuilder::new()
                .compute(WorkSpec::new(wl(StreamSpec::fpu_bound(0)), 1000))
                .build(),
            ProgramBuilder::new()
                .compute(WorkSpec::new(wl(StreamSpec::fpu_bound(1)), 1000))
                .build(),
            ProgramBuilder::new()
                .compute(WorkSpec::new(wl(StreamSpec::branch_bound(2)), 1000))
                .build(),
        ]);
        let same = corun_interference(&twins[0], &twins[1]);
        let diff = corun_interference(&twins[0], &twins[2]);
        assert!(
            same > diff,
            "identical FP streams must interfere more: {same} vs {diff}"
        );
    }

    #[test]
    fn empty_rank_reports_the_spin_profile() {
        let p = infer_profiles(&[ProgramBuilder::new().build()]).remove(0);
        assert_eq!(p.work, 0);
        assert_eq!(p.profile, WorkloadProfile::new(2.0, 0.1, 0.0));
    }

    #[test]
    fn inference_is_deterministic() {
        let prog = || {
            ProgramBuilder::new()
                .repeat(2, |b| {
                    b.compute(WorkSpec::new(wl(StreamSpec::l2_bound(7)), 5000))
                        .allreduce(64)
                })
                .build()
        };
        assert_eq!(infer_profiles(&[prog()]), infer_profiles(&[prog()]));
    }
}
