//! Static makespan model over `(placement, priority-plan)` space, and
//! the model-driven placement lints.
//!
//! Generalizes the pairwise inversion predictor in [`crate::prio`] to a
//! whole application plan. A [`Plan`] names a rank→context placement and
//! per-rank hardware priorities; [`predict`] evaluates it against the
//! per-phase [`RankProfile`]s from [`crate::profile`]:
//!
//! * **per core, per sync epoch**: a two-phase pair makespan through the
//!   exact Table II/III decode-share semantics (the same `ShareLaw`
//!   equations the mesoscale engine and the `GrantLut` arbitration table
//!   encode — property tests in `smtsim` prove the two agree
//!   cycle-for-cycle over every priority pair), including the finished
//!   rank's busy-wait spin load;
//! * **across cores**: barriers couple the epoch — the application
//!   advances at the *slowest* core's pace, so the predicted makespan is
//!   the sum over epochs of the per-epoch maximum.
//!
//! [`enumerate_plans`] spans the search space `mtb suggest` ranks:
//! every pairing of ranks onto SMT cores × the OS-settable priority
//! ladder within the bounded-difference limit. On top of the model sit
//! three advisory lints (Info severity — the configurations are legal
//! and the paper's own reference cases trigger them by design):
//! `MTB-ILP-CONFLICT`, `MTB-BOTTLENECK-UNPAIRED` and
//! `MTB-PLAN-DOMINATED`.

use crate::diag::{codes, Diagnostic, Report, Severity};
use crate::prio::{self, CaseSpec, RankLoad};
use crate::profile::{corun_interference, IlpClass, RankProfile};
use mtb_oskernel::CtxAddr;
use mtb_smtsim::inst::StreamSpec;
use mtb_smtsim::model::{CoreModel, ThreadId, Workload};
use mtb_smtsim::perfmodel::{MesoConfig, MesoCore};
use mtb_smtsim::HwPriority;

/// One candidate static configuration: placement plus effective hardware
/// priorities (1..=6, the OS-settable range), indexed by rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// `placement[rank]` = hardware context.
    pub placement: Vec<CtxAddr>,
    /// `priorities[rank]` = effective hardware priority.
    pub priorities: Vec<u8>,
}

impl Plan {
    /// Human-readable plan label: core groups with their priorities,
    /// e.g. `"r0+r3 @4/6 | r1+r2 @4/6"`.
    pub fn label(&self) -> String {
        let mut cores = core_groups(&self.placement);
        cores.sort_by_key(|(core, _)| *core);
        cores
            .iter()
            .map(|(_, ranks)| {
                let names: Vec<String> = ranks.iter().map(|r| format!("r{r}")).collect();
                let prios: Vec<String> = ranks
                    .iter()
                    .map(|&r| self.priorities[r].to_string())
                    .collect();
                format!("{} @{}", names.join("+"), prios.join("/"))
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Predicted outcome of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted application makespan (cycles at the model's scale).
    pub makespan: f64,
    /// Per-core `(core, ranks, busy_time)`: the summed per-epoch
    /// completion time of that core's pair.
    pub per_core: Vec<(usize, Vec<usize>, f64)>,
    /// The rank predicted to finish last overall.
    pub bottleneck: usize,
    /// Spread between the slowest and fastest core as a percentage of
    /// the mean core time.
    pub imbalance_pct: f64,
}

/// Throughput of a rank running alone on a core (the sibling context has
/// no workload; its unconsumed decode share is partially stolen).
fn solo_rate(profile: &mtb_smtsim::model::WorkloadProfile) -> f64 {
    let mut core = MesoCore::new(MesoConfig::default());
    core.assign(
        ThreadId::A,
        Workload::with_profile("solo", StreamSpec::balanced(0), *profile),
    );
    core.set_priority(ThreadId::A, HwPriority::new(4).expect("medium is legal"));
    core.throughputs()[0]
}

/// Group ranks by the core they are placed on, ascending core id, ranks
/// in placement order.
pub fn core_groups(placement: &[CtxAddr]) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (rank, ctx) in placement.iter().enumerate() {
        match groups.iter_mut().find(|(c, _)| *c == ctx.core) {
            Some((_, ranks)) => ranks.push(rank),
            None => groups.push((ctx.core, vec![rank])),
        }
    }
    groups.sort_by_key(|(c, _)| *c);
    groups
}

/// Per-epoch load vectors for the phase-aligned path: `loads[e][rank]`.
/// `None` when the ranks' sync structures disagree (fall back to
/// whole-program totals — one "epoch").
fn epoch_loads(profiles: &[RankProfile]) -> Option<Vec<Vec<RankLoad>>> {
    let epochs = profiles.first()?.phases.len();
    if profiles.iter().any(|p| p.phases.len() != epochs) {
        return None;
    }
    Some(
        (0..epochs)
            .map(|e| {
                profiles
                    .iter()
                    .map(|p| RankLoad {
                        work: p.phases[e].work,
                        profile: p.phases[e].profile,
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Predict the makespan of `(placement, priorities)` over the inferred
/// rank profiles. Returns `None` when a core hosts more than two ranks,
/// a rank is missing a priority/placement, or a pair is fully starved.
pub fn predict(
    profiles: &[RankProfile],
    placement: &[CtxAddr],
    priorities: &[u8],
) -> Option<Prediction> {
    let n = profiles.len();
    if placement.len() != n || priorities.len() != n || n == 0 {
        return None;
    }
    let groups = core_groups(placement);
    if groups.iter().any(|(_, ranks)| ranks.len() > 2) {
        return None;
    }

    let per_epoch = epoch_loads(profiles).unwrap_or_else(|| {
        vec![profiles
            .iter()
            .map(|p| RankLoad {
                work: p.work,
                profile: p.profile,
            })
            .collect()]
    });

    let mut core_time = vec![0.0f64; groups.len()];
    let mut core_last = vec![0usize; groups.len()];
    let mut makespan = 0.0f64;
    for loads in &per_epoch {
        let mut epoch_max = 0.0f64;
        for (g, (_, ranks)) in groups.iter().enumerate() {
            let (t, last) = match ranks.as_slice() {
                [solo] => {
                    let l = &loads[*solo];
                    let r = solo_rate(&l.profile);
                    if r <= 0.0 {
                        return None;
                    }
                    (l.work as f64 / r, *solo)
                }
                [a, b] => {
                    let (t, last_idx) =
                        prio::makespan(&loads[*a], &loads[*b], priorities[*a], priorities[*b])?;
                    (t, if last_idx == 0 { *a } else { *b })
                }
                _ => return None,
            };
            core_time[g] += t;
            // A zero-work epoch (e.g. a pure-sync segment) finishes
            // instantly and says nothing about who is the straggler.
            if t > 0.0 {
                core_last[g] = last;
            }
            epoch_max = epoch_max.max(t);
        }
        makespan += epoch_max;
    }

    let slowest = core_time
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(g, _)| g)?;
    let mean = core_time.iter().sum::<f64>() / core_time.len() as f64;
    let min = core_time.iter().cloned().fold(f64::INFINITY, f64::min);
    let imbalance_pct = if mean > 0.0 {
        (core_time[slowest] - min) / mean * 100.0
    } else {
        0.0
    };
    Some(Prediction {
        makespan,
        per_core: groups
            .iter()
            .zip(&core_time)
            .map(|((core, ranks), &t)| (*core, ranks.clone(), t))
            .collect(),
        bottleneck: core_last[slowest],
        imbalance_pct,
    })
}

/// The OS-settable priority values the plan search explores. 1 and 2 are
/// excluded: Table III shows priority 1 is effectively starved against
/// any normal sibling, and the bounded-difference limit makes 2 useful
/// only next to 3/4 where 3..=6 already covers the same differences.
pub const PRIORITY_LADDER: &[u8] = &[3, 4, 5, 6];

/// Distinct pairings of `n` ranks onto 2-way SMT cores. For 4 ranks the
/// three perfect matchings; for 2 ranks the single pair; otherwise the
/// identity placement only.
pub fn enumerate_pairings(n: usize) -> Vec<Vec<CtxAddr>> {
    let place = |pairs: &[(usize, usize)]| {
        let mut p = vec![CtxAddr::from_cpu(0); pairs.len() * 2];
        for (core, &(a, b)) in pairs.iter().enumerate() {
            p[a] = CtxAddr::from_cpu(core * 2);
            p[b] = CtxAddr::from_cpu(core * 2 + 1);
        }
        p
    };
    match n {
        2 => vec![place(&[(0, 1)])],
        4 => vec![
            place(&[(0, 1), (2, 3)]),
            place(&[(0, 2), (1, 3)]),
            place(&[(0, 3), (1, 2)]),
        ],
        _ => vec![(0..n).map(CtxAddr::from_cpu).collect()],
    }
}

/// The full plan search space: pairings × per-core priority-ladder
/// assignments within the bounded-difference limit.
pub fn enumerate_plans(n: usize) -> Vec<Plan> {
    let mut plans = Vec::new();
    for placement in enumerate_pairings(n) {
        let groups = core_groups(&placement);
        // Per-core candidate priority pairs.
        let mut pair_choices: Vec<Vec<Vec<(usize, u8)>>> = Vec::new();
        for (_, ranks) in &groups {
            let mut choices = Vec::new();
            match ranks.as_slice() {
                [solo] => choices.push(vec![(*solo, 4u8)]),
                [a, b] => {
                    for &pa in PRIORITY_LADDER {
                        for &pb in PRIORITY_LADDER {
                            if pa.abs_diff(pb) <= prio::DEFAULT_MAX_DIFF {
                                choices.push(vec![(*a, pa), (*b, pb)]);
                            }
                        }
                    }
                }
                _ => continue,
            }
            pair_choices.push(choices);
        }
        // Cartesian product over cores.
        let mut combos: Vec<Vec<(usize, u8)>> = vec![Vec::new()];
        for choices in &pair_choices {
            let mut next = Vec::with_capacity(combos.len() * choices.len());
            for combo in &combos {
                for choice in choices {
                    let mut c = combo.clone();
                    c.extend_from_slice(choice);
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            let mut priorities = vec![4u8; n];
            for (rank, p) in combo {
                priorities[rank] = p;
            }
            plans.push(Plan {
                placement: placement.clone(),
                priorities,
            });
        }
    }
    plans
}

/// Interference score above which two co-scheduled high-ILP ranks are
/// reported.
const ILP_CONFLICT_THRESHOLD: f64 = 0.5;

/// Relative improvement a rival plan must predict before
/// `MTB-PLAN-DOMINATED` / `MTB-BOTTLENECK-UNPAIRED` fire (model noise
/// floor, matching the inversion lint's margin).
const DOMINATED_MARGIN: f64 = 0.05;

/// Model-driven placement lints for one case. All three report at Info:
/// the configurations are legal — the findings say performance is being
/// left on the table, which the paper's own reference cases (case A runs
/// everything at MEDIUM on the default placement) do by design.
pub fn check_plan(case: &CaseSpec, profiles: &[RankProfile]) -> Report {
    let mut report = Report::new();
    let n = profiles.len();
    if n == 0 || case.placement.len() != n || profiles.iter().all(|p| p.work == 0) {
        return report;
    }
    let priorities: Vec<u8> = (0..n).map(|r| prio::effective(case, r)).collect();
    let Some(current) = predict(profiles, &case.placement, &priorities) else {
        return report;
    };

    // MTB-ILP-CONFLICT: two high-ILP ranks fighting over one core's
    // units. Both want more than the fair decode share, and their unit
    // mixes overlap enough that neither gets it.
    for (a, b) in prio::core_pairs(&case.placement) {
        let (pa, pb) = (&profiles[a], &profiles[b]);
        if pa.ilp == IlpClass::High && pb.ilp == IlpClass::High {
            let score = corun_interference(pa, pb);
            if score >= ILP_CONFLICT_THRESHOLD {
                report.push(
                    Diagnostic::new(
                        codes::ILP_CONFLICT,
                        Severity::Info,
                        format!(
                            "{}: ranks {a} and {b} are both high-ILP ({} and {}) and share \
                             a core with unit-mix interference {score:.2} — pairing a \
                             high-ILP rank with a low-ILP one frees decode slots \
                             (ILP-aware co-scheduling)",
                            case.name, pa.bound, pb.bound
                        ),
                    )
                    .with_rank(a),
                );
            }
        }
    }

    // MTB-BOTTLENECK-UNPAIRED: the predicted bottleneck rank is not
    // sharing a core with the shortest rank, and repairing them is
    // predicted to help. Pairing long with short lets the short rank
    // finish early and donate its decode share to the bottleneck.
    let bottleneck = current.bottleneck;
    let shortest = (0..n)
        .filter(|&r| r != bottleneck)
        .min_by(|&a, &b| {
            let ta = profiles[a].work as f64 / profiles[a].profile.ipc_st.max(0.05);
            let tb = profiles[b].work as f64 / profiles[b].profile.ipc_st.max(0.05);
            ta.total_cmp(&tb)
        })
        .unwrap_or(bottleneck);
    let same_core = case.placement[bottleneck].core == case.placement[shortest].core;
    let mut best_alternative: Option<(Plan, f64)> = None;
    if matches!(n, 2 | 4) {
        for plan in enumerate_plans(n) {
            if let Some(p) = predict(profiles, &plan.placement, &plan.priorities) {
                if best_alternative
                    .as_ref()
                    .is_none_or(|(_, t)| p.makespan < *t)
                {
                    best_alternative = Some((plan, p.makespan));
                }
            }
        }
    }
    if !same_core && bottleneck != shortest {
        if let Some((_, best_t)) = &best_alternative {
            if *best_t < current.makespan * (1.0 - DOMINATED_MARGIN) {
                report.push(
                    Diagnostic::new(
                        codes::BOTTLENECK_UNPAIRED,
                        Severity::Info,
                        format!(
                            "{}: predicted bottleneck rank {bottleneck} does not share a \
                             core with the shortest rank {shortest} — the short rank's \
                             early finish would donate decode slots to the bottleneck",
                            case.name
                        ),
                    )
                    .with_rank(bottleneck),
                );
            }
        }
    }

    // MTB-PLAN-DOMINATED: a strictly better plan exists in the search
    // space. Reported with the winning plan so the finding is actionable.
    if let Some((plan, best_t)) = &best_alternative {
        if *best_t < current.makespan * (1.0 - DOMINATED_MARGIN) {
            let gain = (current.makespan / best_t - 1.0) * 100.0;
            report.push(Diagnostic::new(
                codes::PLAN_DOMINATED,
                Severity::Info,
                format!(
                    "{}: the static model predicts plan [{}] is {gain:.0}% faster than \
                     this configuration (`mtb suggest` ranks the full space)",
                    case.name,
                    plan.label()
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::infer_profiles;
    use crate::PrioritySpec;
    use mtb_mpisim::program::WorkSpec;
    use mtb_mpisim::ProgramBuilder;
    use mtb_oskernel::KernelFlavour;
    use mtb_smtsim::model::Workload;

    /// Four ranks, work 1x/4x/1x/4x, three barrier epochs. The streams
    /// are decode-hungry (high ILP) so priorities actually move the
    /// rates — a unit-bound stream is insensitive to decode shares and
    /// the model rightly predicts priorities cannot help it.
    fn programs(scale: u64) -> Vec<mtb_mpisim::Program> {
        (0..4)
            .map(|rank| {
                let work = if rank % 2 == 1 { 4 * scale } else { scale };
                ProgramBuilder::new()
                    .repeat(3, move |b| {
                        b.compute(WorkSpec::new(
                            Workload::from_spec("w", StreamSpec::frontend_bound(rank as u64)),
                            work,
                        ))
                        .barrier()
                    })
                    .build()
            })
            .collect()
    }

    fn identity(n: usize) -> Vec<CtxAddr> {
        (0..n).map(CtxAddr::from_cpu).collect()
    }

    #[test]
    fn boosting_the_heavy_rank_improves_the_predicted_makespan() {
        let profiles = infer_profiles(&programs(1_000_000));
        let base = predict(&profiles, &identity(4), &[4, 4, 4, 4]).unwrap();
        let boosted = predict(&profiles, &identity(4), &[4, 6, 4, 6]).unwrap();
        assert!(
            boosted.makespan < base.makespan,
            "case-C-style boost must be predicted faster: {} vs {}",
            boosted.makespan,
            base.makespan
        );
        assert!(boosted.imbalance_pct < base.imbalance_pct + 1e-9);
    }

    #[test]
    fn overboosting_inverts_and_degrades() {
        let profiles = infer_profiles(&programs(1_000_000));
        let base = predict(&profiles, &identity(4), &[4, 4, 4, 4]).unwrap();
        let inverted = predict(&profiles, &identity(4), &[3, 6, 3, 6]).unwrap();
        assert!(
            inverted.makespan > base.makespan,
            "case-D overboost must be predicted slower"
        );
        // The bottleneck flips from the heavy ranks to a light one.
        assert_eq!(base.bottleneck % 2, 1);
        assert_eq!(inverted.bottleneck % 2, 0);
    }

    #[test]
    fn epoch_sum_dominates_any_single_core_total() {
        let profiles = infer_profiles(&programs(500_000));
        let p = predict(&profiles, &identity(4), &[4, 4, 4, 4]).unwrap();
        for (_, _, t) in &p.per_core {
            assert!(p.makespan >= *t - 1e-6);
        }
        assert_eq!(p.per_core.len(), 2);
    }

    #[test]
    fn enumeration_covers_pairings_and_the_ladder() {
        let plans = enumerate_plans(4);
        // 3 pairings x 14 legal ladder pairs per core x 2 cores.
        assert_eq!(plans.len(), 3 * 14 * 14);
        assert!(plans
            .iter()
            .all(|p| { p.priorities.iter().all(|&v| PRIORITY_LADDER.contains(&v)) }));
        // Every plan respects the bounded-difference limit per core.
        for plan in &plans {
            for (a, b) in prio::core_pairs(&plan.placement) {
                assert!(plan.priorities[a].abs_diff(plan.priorities[b]) <= 2);
            }
        }
        assert_eq!(enumerate_plans(2).len(), 14);
    }

    #[test]
    fn best_plan_beats_the_default_for_imbalanced_work() {
        let profiles = infer_profiles(&programs(1_000_000));
        let base = predict(&profiles, &identity(4), &[4, 4, 4, 4]).unwrap();
        let best = enumerate_plans(4)
            .into_iter()
            .filter_map(|p| predict(&profiles, &p.placement, &p.priorities))
            .map(|p| p.makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(best < base.makespan, "{best} vs {}", base.makespan);
    }

    #[test]
    fn dominated_default_case_is_flagged_at_info() {
        let profiles = infer_profiles(&programs(1_000_000));
        let case = CaseSpec {
            name: "test/A".into(),
            placement: identity(4),
            priorities: vec![PrioritySpec::Default; 4],
            flavour: KernelFlavour::Patched,
        };
        let r = check_plan(&case, &profiles);
        assert!(r.has_code(codes::PLAN_DOMINATED), "{r}");
        assert_eq!(r.worst(), Some(Severity::Info), "advisory only: {r}");
    }

    #[test]
    fn plan_label_is_readable() {
        let plan = Plan {
            placement: identity(4),
            priorities: vec![4, 6, 4, 6],
        };
        assert_eq!(plan.label(), "r0+r1 @4/6 | r2+r3 @4/6");
    }

    #[test]
    fn prediction_is_deterministic() {
        let profiles = infer_profiles(&programs(750_000));
        let a = predict(&profiles, &identity(4), &[4, 5, 4, 6]);
        let b = predict(&profiles, &identity(4), &[4, 5, 4, 6]);
        assert_eq!(a, b);
    }
}
