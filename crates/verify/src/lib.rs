//! # mtb-verify — static analysis of rank programs and priority
//! configurations
//!
//! The paper's central hazard is that a *wrong* priority configuration
//! silently inverts the imbalance and loses performance (MetBench case D,
//! BT-MZ case B, SIESTA case D), and a wrong program deadlocks after
//! cycles have been spent. This crate proves a `(programs, case)` pair
//! sane *before* simulation:
//!
//! * [`comm`] — communication-graph checks by time-free abstract
//!   interpretation of the symbolically flattened programs: wait-for
//!   cycles, unmatched sends/receives, orphan `Irecv`s, mismatched
//!   collective participation, out-of-range ranks. Message matching in
//!   the engine is FIFO per `(from, tag)` and time-independent, so the
//!   abstract verdict matches the engine's termination behaviour exactly.
//! * [`prio`] — priority-configuration lints: Table I legality per the
//!   configured kernel interface, priority-0/1 starvation semantics,
//!   bounded-difference violations, and the decode-share *inversion*
//!   prediction over the case's same-core pairs.
//! * [`profile`] — resource-profile inference: per-sync-epoch unit mix,
//!   boundedness and ILP class abstracted from each rank's statement
//!   stream.
//! * [`plan`] — the static makespan model over `(placement,
//!   priority-plan)` space, the plan search `mtb suggest` ranks, and the
//!   model-driven placement lints (`MTB-ILP-CONFLICT`,
//!   `MTB-BOTTLENECK-UNPAIRED`, `MTB-PLAN-DOMINATED`).
//! * [`diag`] — severities, stable `MTB-*` lint codes, spans, and the
//!   [`Report`] all passes write into.
//!
//! Entry points: [`verify_programs`] (comm only), [`verify_case`]
//! (priorities only), [`verify`] (both, deriving per-rank loads and
//! profiles from the programs).

#![forbid(unsafe_code)]

pub mod comm;
pub mod diag;
pub mod plan;
pub mod prio;
pub mod profile;

pub use diag::{check_share_groups, codes, Diagnostic, Report, Severity};
pub use plan::{enumerate_plans, predict, Plan, Prediction};
pub use prio::{CaseSpec, PrioritySpec, RankLoad};
pub use profile::{infer_profiles, Boundedness, IlpClass, RankProfile};

use mtb_mpisim::Program;

/// Check the communication structure of one program per rank.
pub fn verify_programs(programs: &[Program]) -> Report {
    comm::check_programs(programs)
}

/// Check a priority configuration; `loads` feeds the inversion
/// prediction (pass `&[]` to skip it).
pub fn verify_case(case: &CaseSpec, loads: &[RankLoad]) -> Report {
    prio::check_case(case, loads)
}

/// Full verification of a `(programs, case)` pair: communication checks
/// plus priority lints, with per-rank loads derived from the programs'
/// concrete flattening, and the model-driven placement advisories over
/// the inferred resource profiles.
pub fn verify(programs: &[Program], case: &CaseSpec) -> Report {
    let mut report = comm::check_programs(programs);
    let loads = comm::rank_loads(programs);
    report.merge(prio::check_case(case, &loads));
    let profiles = profile::infer_profiles(programs);
    report.merge(plan::check_plan(case, &profiles));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtb_mpisim::program::WorkSpec;
    use mtb_mpisim::ProgramBuilder;
    use mtb_smtsim::inst::StreamSpec;
    use mtb_smtsim::model::{Workload, WorkloadProfile};

    fn wl(ipc: f64) -> Workload {
        Workload::with_profile(
            "w",
            StreamSpec::balanced(1),
            WorkloadProfile::new(ipc, 0.2, 0.05),
        )
    }

    #[test]
    fn clean_barrier_program_passes() {
        let prog = |n: u64| {
            ProgramBuilder::new()
                .repeat(3, move |b| b.compute(WorkSpec::new(wl(2.0), n)).barrier())
                .build()
        };
        let r = verify_programs(&[prog(10_000), prog(40_000)]);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn cyclic_recv_flagged_as_deadlock() {
        let p0 = ProgramBuilder::new().recv(1, 1).send(1, 2, 64).build();
        let p1 = ProgramBuilder::new().recv(0, 2).send(0, 1, 64).build();
        let r = verify_programs(&[p0, p1]);
        assert!(r.has_errors());
        assert!(r.has_code(codes::DEADLOCK_CYCLE), "{r}");
    }

    #[test]
    fn missed_barrier_flagged_as_collective_mismatch() {
        let p0 = ProgramBuilder::new().barrier().build();
        let p1 = ProgramBuilder::new().build();
        let r = verify_programs(&[p0, p1]);
        assert!(r.has_errors());
        assert!(r.has_code(codes::COLLECTIVE_MISMATCH), "{r}");
    }

    #[test]
    fn recv_from_finished_rank_flagged_unmatched() {
        let p0 = ProgramBuilder::new().recv(1, 99).build();
        let p1 = ProgramBuilder::new()
            .compute(WorkSpec::new(wl(2.0), 1_000))
            .build();
        let r = verify_programs(&[p0, p1]);
        assert!(r.has_errors());
        assert!(r.has_code(codes::UNMATCHED_RECV), "{r}");
    }

    #[test]
    fn orphan_irecv_and_leaked_send_warn() {
        // Rank 0 posts an irecv it never waits for; rank 1's second send
        // is never received.
        let p0 = ProgramBuilder::new().irecv(1, 1).build();
        let p1 = ProgramBuilder::new().send(0, 1, 64).send(0, 5, 64).build();
        let r = verify_programs(&[p0, p1]);
        assert!(!r.has_errors(), "eager sends complete: {r}");
        assert!(r.has_code(codes::ORPHAN_IRECV), "{r}");
        assert!(r.has_code(codes::UNMATCHED_SEND), "{r}");
    }

    #[test]
    fn ping_pong_with_waitall_is_clean() {
        let p0 = ProgramBuilder::new()
            .isend(1, 7, 4096)
            .irecv(1, 8)
            .waitall()
            .build();
        let p1 = ProgramBuilder::new()
            .isend(0, 8, 4096)
            .irecv(0, 7)
            .waitall()
            .build();
        let r = verify_programs(&[p0, p1]);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn structural_edge_cases_are_infos() {
        let p = ProgramBuilder::new()
            .repeat(0, |b| b.compute(WorkSpec::new(wl(2.0), 1)))
            .waitall()
            .send(0, 1, 8)
            .recv(0, 1)
            .build();
        let r = verify_programs(&[p]);
        assert!(!r.has_errors(), "{r}");
        assert!(r.has_code(codes::EMPTY_LOOP), "{r}");
        assert!(r.has_code(codes::WAITALL_EMPTY), "{r}");
        assert!(r.has_code(codes::SELF_SEND), "{r}");
    }

    #[test]
    fn recv_from_self_before_send_deadlocks() {
        let p = ProgramBuilder::new().recv(0, 1).send(0, 1, 8).build();
        let r = verify_programs(&[p]);
        assert!(r.has_errors());
        assert!(
            r.has_code(codes::DEADLOCK_CYCLE),
            "one-rank self-cycle: {r}"
        );
    }

    #[test]
    fn out_of_range_target_is_an_error() {
        let p = ProgramBuilder::new().send(5, 1, 8).build();
        let r = verify_programs(&[p]);
        assert!(r.has_errors());
        assert!(r.has_code(codes::RANK_RANGE), "{r}");
    }

    #[test]
    fn rooted_collective_order_verified() {
        // Rank 1 reduces before bcasting while rank 0 does the opposite:
        // incompatible kinds at epoch 0.
        let p0 = ProgramBuilder::new().bcast(0, 64).reduce(0, 64).build();
        let p1 = ProgramBuilder::new().reduce(0, 64).bcast(0, 64).build();
        let r = verify_programs(&[p0, p1]);
        assert!(r.has_errors());
        assert!(r.has_code(codes::COLLECTIVE_MISMATCH), "{r}");
    }

    #[test]
    fn barrier_vs_allreduce_mix_is_a_warning_only() {
        let p0 = ProgramBuilder::new().barrier().build();
        let p1 = ProgramBuilder::new().allreduce(64).build();
        let r = verify_programs(&[p0, p1]);
        assert!(!r.has_errors(), "engine-legal: {r}");
        assert!(r.has_code(codes::COLLECTIVE_MISMATCH), "{r}");
    }
}
