//! Property tests for the static *performance* analyses (profile
//! inference, makespan prediction, full `verify`) on the randomized
//! program schema the verdict fuzzer uses (`verdict_fuzz.rs`):
//!
//! * **totality** — `infer_profiles` and `predict` never panic on any
//!   program set the schema generates, for any placement the plan
//!   search enumerates and any priority bytes (the model clamps);
//! * **internal consistency** — per-rank profile work equals the sum of
//!   its phase works, and a nonempty unit mix is a distribution;
//! * **determinism** — the full `verify` report and every prediction
//!   are bit-identical across repeated runs and across `MTB_JOBS`
//!   settings (the analyzer is pure; the env knob that shards the
//!   *simulator* must not leak into static verdicts).

use mtb_mpisim::program::{Program, ProgramBuilder, WorkSpec};
use mtb_oskernel::{CtxAddr, KernelFlavour};
use mtb_smtsim::inst::StreamSpec;
use mtb_smtsim::model::{Workload, WorkloadProfile};
use mtb_verify::plan::enumerate_pairings;
use mtb_verify::{enumerate_plans, infer_profiles, predict, CaseSpec, PrioritySpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpKind {
    Compute,
    Exchange,
    Barrier,
    AllReduce,
    Bcast,
    Reduce,
}

fn arb_ops() -> impl Strategy<Value = Vec<(OpKind, u64)>> {
    proptest::collection::vec((0usize..6, 1u64..60_000), 1..12).prop_map(|v| {
        v.into_iter()
            .map(|(k, size)| {
                let kind = match k {
                    0 => OpKind::Compute,
                    1 => OpKind::Exchange,
                    2 => OpKind::Barrier,
                    3 => OpKind::AllReduce,
                    4 => OpKind::Bcast,
                    _ => OpKind::Reduce,
                };
                (kind, size)
            })
            .collect()
    })
}

fn build_programs(ops: &[(OpKind, u64)], n_ranks: usize) -> Vec<Program> {
    (0..n_ranks)
        .map(|rank| {
            let load = Workload::with_profile(
                "fuzz",
                StreamSpec::balanced(rank as u64 + 1),
                WorkloadProfile::new(1.0 + rank as f64 * 0.4, 0.1, 0.05),
            );
            let mut b = ProgramBuilder::new();
            for (i, (kind, size)) in ops.iter().enumerate() {
                match kind {
                    OpKind::Compute => {
                        b = b.compute(WorkSpec::new(load.clone(), size * (rank as u64 + 1)));
                    }
                    OpKind::Exchange => {
                        let s = 1 + i % (n_ranks - 1).max(1);
                        let to = (rank + s) % n_ranks;
                        let from = (rank + n_ranks - s) % n_ranks;
                        b = b
                            .isend(to, i as u32, *size % 4096)
                            .irecv(from, i as u32)
                            .waitall();
                    }
                    OpKind::Barrier => b = b.barrier(),
                    OpKind::AllReduce => b = b.allreduce(*size % 1024),
                    OpKind::Bcast => b = b.bcast((*size as usize) % n_ranks, *size % 1024),
                    OpKind::Reduce => b = b.reduce((*size as usize) % n_ranks, *size % 1024),
                }
            }
            b.build()
        })
        .collect()
}

fn case_for(placement: &[CtxAddr], priorities: &[u8]) -> CaseSpec {
    CaseSpec {
        name: "fuzz/plan".into(),
        placement: placement.to_vec(),
        priorities: priorities
            .iter()
            .map(|&p| PrioritySpec::ProcFs(p.clamp(1, 6)))
            .collect(),
        flavour: KernelFlavour::Patched,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Profile inference is total and internally consistent.
    #[test]
    fn profile_inference_is_total_and_consistent(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
    ) {
        let programs = build_programs(&ops, n_ranks);
        let profiles = infer_profiles(&programs);
        prop_assert_eq!(profiles.len(), n_ranks);
        for p in &profiles {
            let phase_work: u64 = p.phases.iter().map(|ph| ph.work).sum();
            prop_assert_eq!(p.work, phase_work, "rank {} work mismatch", p.rank);
            if p.work > 0 {
                let total: f64 = p.mix.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-6, "mix not a distribution: {total}");
            }
            prop_assert!(p.profile.ipc_st > 0.0);
        }
    }

    /// The makespan model never panics for any enumerated placement and
    /// any priority bytes, and is deterministic call-to-call.
    #[test]
    fn prediction_is_total_and_deterministic(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
        prios in proptest::collection::vec(0u8..=7, 4),
        pairing_pick in 0usize..3,
    ) {
        let programs = build_programs(&ops, n_ranks);
        let profiles = infer_profiles(&programs);
        let pairings = enumerate_pairings(n_ranks);
        let placement = &pairings[pairing_pick % pairings.len()];
        let priorities = &prios[..n_ranks];
        let a = predict(&profiles, placement, priorities);
        let b = predict(&profiles, placement, priorities);
        prop_assert_eq!(&a, &b, "prediction must be deterministic");
        if let Some(p) = a {
            prop_assert!(p.makespan.is_finite() && p.makespan >= 0.0);
            prop_assert!(p.bottleneck < n_ranks);
            prop_assert!(p.imbalance_pct.is_finite() && p.imbalance_pct >= 0.0);
        }
    }

    /// The full verify pass (comm + priorities + plan advisories) never
    /// panics and renders bit-identically across MTB_JOBS settings.
    #[test]
    fn verify_is_deterministic_across_job_counts(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
        prios in proptest::collection::vec(1u8..=6, 4),
    ) {
        let programs = build_programs(&ops, n_ranks);
        let placement: Vec<CtxAddr> = (0..n_ranks).map(CtxAddr::from_cpu).collect();
        let case = case_for(&placement, &prios[..n_ranks]);
        // The static analyzer is pure single-threaded code: the knob
        // that shards the simulator must not change any verdict.
        std::env::set_var("MTB_JOBS", "1");
        let r1 = mtb_verify::verify(&programs, &case).to_string();
        std::env::set_var("MTB_JOBS", "4");
        let r4 = mtb_verify::verify(&programs, &case).to_string();
        std::env::remove_var("MTB_JOBS");
        prop_assert_eq!(r1, r4, "verify output depends on MTB_JOBS");
    }

    /// Every plan the search enumerates round-trips through the model:
    /// predictable, and with a label the suggestion UI can print.
    #[test]
    fn enumerated_plans_are_predictable(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
        plan_pick in 0usize..1024,
    ) {
        let programs = build_programs(&ops, n_ranks);
        let profiles = infer_profiles(&programs);
        let plans = enumerate_plans(n_ranks);
        let plan = &plans[plan_pick % plans.len()];
        let p = predict(&profiles, &plan.placement, &plan.priorities);
        prop_assert!(p.is_some(), "ladder plans are never starved: {}", plan.label());
        prop_assert!(!plan.label().is_empty());
    }
}
