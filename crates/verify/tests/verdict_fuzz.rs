//! Property tests tying analyzer verdicts to engine behaviour, on the
//! same randomized program schema the engine fuzzer uses
//! (`crates/mpisim/tests/engine_fuzz.rs`):
//!
//! * **soundness for clean programs** — a program set the analyzer
//!   reports error-free must run to completion in the engine;
//! * **no false negatives** — sabotage a well-formed program set by
//!   deleting one statement; whenever the engine refuses or deadlocks,
//!   the analyzer must have reported at least one Error;
//! * **no false positives** — whenever the analyzer reports an Error on
//!   a sabotaged set, the engine must indeed refuse or deadlock (the
//!   abstract executor mirrors the engine's FIFO matching exactly).

use mtb_mpisim::engine::{Engine, SimConfig, SimError};
use mtb_mpisim::program::{Program, ProgramBuilder, WorkSpec};
use mtb_oskernel::CtxAddr;
use mtb_smtsim::inst::StreamSpec;
use mtb_smtsim::model::{Workload, WorkloadProfile};
use mtb_verify::verify_programs;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpKind {
    Compute,
    Exchange,
    Barrier,
    AllReduce,
    Bcast,
    Reduce,
}

fn arb_ops() -> impl Strategy<Value = Vec<(OpKind, u64)>> {
    proptest::collection::vec((0usize..6, 1u64..60_000), 1..12).prop_map(|v| {
        v.into_iter()
            .map(|(k, size)| {
                let kind = match k {
                    0 => OpKind::Compute,
                    1 => OpKind::Exchange,
                    2 => OpKind::Barrier,
                    3 => OpKind::AllReduce,
                    4 => OpKind::Bcast,
                    _ => OpKind::Reduce,
                };
                (kind, size)
            })
            .collect()
    })
}

fn build_programs(ops: &[(OpKind, u64)], n_ranks: usize) -> Vec<Program> {
    (0..n_ranks)
        .map(|rank| {
            let load = Workload::with_profile(
                "fuzz",
                StreamSpec::balanced(rank as u64 + 1),
                WorkloadProfile::new(1.0 + rank as f64 * 0.4, 0.1, 0.05),
            );
            let mut b = ProgramBuilder::new();
            for (i, (kind, size)) in ops.iter().enumerate() {
                match kind {
                    OpKind::Compute => {
                        b = b.compute(WorkSpec::new(load.clone(), size * (rank as u64 + 1)));
                    }
                    OpKind::Exchange => {
                        let s = 1 + i % (n_ranks - 1).max(1);
                        let to = (rank + s) % n_ranks;
                        let from = (rank + n_ranks - s) % n_ranks;
                        b = b
                            .isend(to, i as u32, *size % 4096)
                            .irecv(from, i as u32)
                            .waitall();
                    }
                    OpKind::Barrier => b = b.barrier(),
                    OpKind::AllReduce => b = b.allreduce(*size % 1024),
                    OpKind::Bcast => b = b.bcast((*size as usize) % n_ranks, *size % 1024),
                    OpKind::Reduce => b = b.reduce((*size as usize) % n_ranks, *size % 1024),
                }
            }
            b.build()
        })
        .collect()
}

/// Engine verdict on a program set: `Ok` cycles or the structured error
/// (construction-time rejections and run-time deadlocks both count).
fn engine_verdict(programs: &[Program]) -> Result<u64, SimError> {
    let mut cfg = SimConfig::power5(programs.len());
    cfg.placement = (0..programs.len()).map(CtxAddr::from_cpu).collect();
    cfg.max_cycles = 50_000_000_000;
    Engine::try_new(programs, cfg)?
        .try_run()
        .map(|r| r.total_cycles)
}

/// Delete one top-level statement from one rank — the sabotage that
/// turns a well-formed set into (maybe) a deadlocking one.
fn sabotage(programs: &mut [Program], rank_pick: usize, stmt_pick: usize) -> bool {
    let rank = rank_pick % programs.len();
    let body = &mut programs[rank].body;
    if body.is_empty() {
        return false;
    }
    let at = stmt_pick % body.len();
    body.remove(at);
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analyzer-clean programs must complete in the engine.
    #[test]
    fn analyzer_clean_programs_complete(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
    ) {
        let programs = build_programs(&ops, n_ranks);
        let report = verify_programs(&programs);
        prop_assert!(!report.has_errors(), "well-formed schema must verify:\n{report}");
        let verdict = engine_verdict(&programs);
        prop_assert!(verdict.is_ok(), "clean verdict but engine failed: {:?}", verdict.err());
    }

    /// Sabotaged programs: engine failure ⇒ analyzer Error (no false
    /// negatives), analyzer Error ⇒ engine failure (no false positives).
    #[test]
    fn verdicts_match_engine_on_sabotaged_programs(
        ops in arb_ops(),
        n_ranks in 2usize..=4,
        rank_pick in 0usize..4,
        stmt_pick in 0usize..64,
    ) {
        let mut programs = build_programs(&ops, n_ranks);
        prop_assume!(sabotage(&mut programs, rank_pick, stmt_pick));
        let report = verify_programs(&programs);
        let verdict = engine_verdict(&programs);
        match &verdict {
            Err(e) => prop_assert!(
                report.has_errors(),
                "engine failed ({e}) but the analyzer saw no error:\n{report}"
            ),
            Ok(_) => prop_assert!(
                !report.has_errors(),
                "engine completed but the analyzer claims an error:\n{report}"
            ),
        }
    }
}
