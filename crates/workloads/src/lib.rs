//! # mtb-workloads — the paper's three applications, modelled
//!
//! Section VII evaluates the proposal on three MPI applications, which we
//! reproduce as simulated workloads:
//!
//! * [`metbench`] — MetBench, BSC's Minimum Execution Time Benchmark: a
//!   master/worker framework with per-worker loads and artificial
//!   imbalance (Table IV / Figure 2).
//! * [`btmz`] — a NAS BT Multi-Zone class-A-like iterative solver whose
//!   zones have very uneven sizes; per-iteration neighbour exchange with
//!   `isend/irecv/waitall` (Table V / Figure 3).
//! * [`siesta`] — a SIESTA-like ab-initio materials code: init/iterate/
//!   finalize phases with *per-iteration varying* rank loads, so the
//!   bottleneck moves between ranks (Table VI / Figure 4).
//! * [`spmz`] — SP-MZ and LU-MZ, the *balanced* multi-zone siblings
//!   (equal zones): the control group where priorities have nothing to
//!   gain.
//! * [`synthetic`] — the 4-process synthetic example of Figure 1.
//! * [`loads`] — the canonical workload profiles, calibrated so the three
//!   applications respond to hardware priorities the way the paper
//!   measured (see DESIGN.md §5): MetBench is decode-bandwidth-hungry,
//!   BT-MZ extremely so, SIESTA is memory-bound and therefore only mildly
//!   priority-sensitive.

#![forbid(unsafe_code)]

pub mod btmz;
pub mod loads;
pub mod metbench;
pub mod mz;
pub mod siesta;
pub mod spmz;
pub mod synthetic;

pub use btmz::BtMzConfig;
pub use metbench::MetBenchConfig;
pub use siesta::SiestaConfig;
pub use spmz::{MzKind, SpMzConfig};
