//! MetBench — the Minimum Execution Time Benchmark (Section VII-A).
//!
//! MetBench is BSC's micro-benchmark suite: a master keeps a set of
//! workers in lockstep with an `mpi_barrier` per iteration; each worker
//! executes its assigned load. Imbalance is introduced by giving one
//! worker per core a larger load than its core-mate. In the paper's
//! Table IV configuration, processes P1 and P3 carry the small load and
//! P2 and P4 the large one (about 4x), with P1+P2 on core 1 and P3+P4 on
//! core 2.
//!
//! The instruction totals below are calibrated so the reference case (all
//! priorities MEDIUM) executes in ≈81.6 nominal seconds, like the paper's
//! Case A, with the light ranks busy ≈24% of the time.

use crate::loads;
use mtb_mpisim::program::{Program, ProgramBuilder, TracePhase, WorkSpec};
use mtb_oskernel::CtxAddr;

/// Total instructions of the heavy ranks in the reference configuration.
pub const HEAVY_TOTAL: u64 = 304_000_000_000;

/// Heavy-to-light work ratio (Table IV case A: light ranks compute ~24.3%
/// of the time while heavy ranks are ~99% busy).
pub const HEAVY_OVER_LIGHT: f64 = 4.07;

/// MetBench generator configuration.
#[derive(Debug, Clone)]
pub struct MetBenchConfig {
    /// Number of ranks (the paper uses 4 workers across 2 cores).
    pub ranks: usize,
    /// Barrier-separated iterations.
    pub iterations: u32,
    /// Which ranks carry the heavy load (paper: P2 and P4 = ranks 1, 3).
    pub heavy_ranks: Vec<usize>,
    /// Work multiplier (1.0 = paper scale; tests use small values).
    pub scale: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for MetBenchConfig {
    fn default() -> Self {
        MetBenchConfig {
            ranks: 4,
            iterations: 100,
            heavy_ranks: vec![1, 3],
            scale: 1.0,
            seed: 0x4d45_5442, // "METB"
        }
    }
}

impl MetBenchConfig {
    /// A cheap configuration for unit tests (~10⁻³ of paper scale).
    pub fn tiny() -> MetBenchConfig {
        MetBenchConfig {
            iterations: 10,
            scale: 1e-3,
            ..Default::default()
        }
    }

    /// Per-iteration instructions for `rank`.
    pub fn work_of(&self, rank: usize) -> u64 {
        let total = if self.heavy_ranks.contains(&rank) {
            HEAVY_TOTAL as f64
        } else {
            HEAVY_TOTAL as f64 / HEAVY_OVER_LIGHT
        };
        (total * self.scale / f64::from(self.iterations.max(1))) as u64
    }

    /// Build the rank programs.
    pub fn programs(&self) -> Vec<Program> {
        (0..self.ranks)
            .map(|rank| {
                let per_iter = self.work_of(rank);
                let load = loads::metbench_load(self.seed.wrapping_add(rank as u64));
                ProgramBuilder::new()
                    .phase(TracePhase::Body)
                    .repeat(self.iterations, |b| {
                        b.compute(WorkSpec::new(load.clone(), per_iter)).barrier()
                    })
                    .build()
                    .named(format!("P{}", rank + 1))
            })
            .collect()
    }

    /// The paper's placement: P1+P2 on core 1, P3+P4 on core 2
    /// (rank i on cpu i).
    pub fn placement(&self) -> Vec<CtxAddr> {
        (0..self.ranks).map(CtxAddr::from_cpu).collect()
    }

    /// The paper's literal master/worker structure (Section VII-A and
    /// Figure 2): rank 0 is the master; each iteration it broadcasts the
    /// go-signal, the workers execute their loads, everyone's results are
    /// reduced back to the master, and the master runs the statistical
    /// post-processing — the short black bars at the end of every
    /// computation phase in Figure 2.
    ///
    /// The master also carries the light load (the paper's P1 computes
    /// ~24% of the time), so the rank work distribution matches
    /// [`MetBenchConfig::programs`]; only the synchronization protocol
    /// differs (rooted collectives instead of a bare barrier).
    pub fn master_worker_programs(&self) -> Vec<Program> {
        let stats_work = self.work_of(0) / 20; // the master's bookkeeping
        (0..self.ranks)
            .map(|rank| {
                let per_iter = self.work_of(rank);
                let load = loads::metbench_load(self.seed.wrapping_add(rank as u64));
                let mut b = ProgramBuilder::new().phase(TracePhase::Body);
                let load2 = load.clone();
                b = b.repeat(self.iterations, move |mut it| {
                    // Master broadcasts the iteration's parameters.
                    it = it.bcast(0, 256);
                    // Everyone (master included) runs its load.
                    it = it.compute(WorkSpec::new(load2.clone(), per_iter));
                    // Results flow back to the master...
                    it = it.reduce(0, 1024);
                    if rank == 0 {
                        // ...which post-processes them.
                        it = it.compute(WorkSpec::new(load2.clone(), stats_work));
                    }
                    it
                });
                b.build().named(format!("P{}", rank + 1))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_ranks_get_heavier_work() {
        let cfg = MetBenchConfig::default();
        assert!(cfg.work_of(1) > cfg.work_of(0));
        assert!(cfg.work_of(3) > cfg.work_of(2));
        let ratio = cfg.work_of(1) as f64 / cfg.work_of(0) as f64;
        assert!((ratio - HEAVY_OVER_LIGHT).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn total_work_matches_scale() {
        let cfg = MetBenchConfig::default();
        let per_iter = cfg.work_of(1);
        assert_eq!(per_iter * u64::from(cfg.iterations), 304_000_000_000);
        let half = MetBenchConfig {
            scale: 0.5,
            ..Default::default()
        };
        assert_eq!(half.work_of(1) * 100, 152_000_000_000);
    }

    #[test]
    fn programs_have_barrier_per_iteration() {
        let cfg = MetBenchConfig::tiny();
        let progs = cfg.programs();
        assert_eq!(progs.len(), 4);
        for p in &progs {
            let ops = mtb_mpisim::interp::flatten(p, 0);
            let barriers = mtb_mpisim::interp::count_sync_epochs(&ops);
            assert_eq!(barriers, 10);
        }
        assert_eq!(progs[0].name.as_deref(), Some("P1"));
    }

    #[test]
    fn master_worker_structure_uses_rooted_collectives() {
        let cfg = MetBenchConfig::tiny();
        let progs = cfg.master_worker_programs();
        assert_eq!(progs.len(), 4);
        for (r, p) in progs.iter().enumerate() {
            let ops = mtb_mpisim::interp::flatten(p, r);
            // bcast + reduce per iteration = 2 epochs each.
            assert_eq!(
                mtb_mpisim::interp::count_sync_epochs(&ops),
                2 * cfg.iterations as usize,
                "rank {r}"
            );
        }
        // Only the master has the statistics compute: it has one extra
        // compute op per iteration.
        let count_computes = |r: usize| {
            mtb_mpisim::interp::flatten(&progs[r], r)
                .iter()
                .filter(|o| matches!(o, mtb_mpisim::interp::FlatOp::Compute(_)))
                .count()
        };
        assert_eq!(count_computes(0), 2 * cfg.iterations as usize);
        assert_eq!(count_computes(1), cfg.iterations as usize);
    }

    #[test]
    fn placement_is_rank_to_cpu_identity() {
        let cfg = MetBenchConfig::default();
        let pl = cfg.placement();
        assert_eq!(pl[0].cpu(), 0);
        assert_eq!(pl[3].cpu(), 3);
        // P1+P2 share core 0, P3+P4 share core 1.
        assert_eq!(pl[0].core, pl[1].core);
        assert_eq!(pl[2].core, pl[3].core);
        assert_ne!(pl[0].core, pl[2].core);
    }
}
