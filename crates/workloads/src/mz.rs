//! Shared skeleton of the NAS multi-zone benchmarks.
//!
//! BT-MZ, SP-MZ and LU-MZ (Jin & van der Wijngaart, the paper's reference 18)
//! share one structure: per iteration, each rank solves its zones, then
//! exchanges boundary data with its ring neighbours via
//! `isend`/`irecv`/`waitall`. They differ in their zone-size
//! distributions — BT-MZ's zones grow geometrically (badly imbalanced),
//! SP-MZ's and LU-MZ's are equal (balanced) — which is exactly what makes
//! them the treatment and control groups for priority balancing.

use mtb_mpisim::program::{Program, ProgramBuilder, TracePhase, WorkSpec};
use mtb_smtsim::model::Workload;

/// Build the rank programs of a multi-zone benchmark: init compute +
/// barrier, `iterations` x (compute, ring exchange, waitall), final
/// barrier.
pub fn ring_programs(
    works: &[u64],
    iterations: u32,
    load_for: impl Fn(usize) -> Workload,
    exchange_bytes: u64,
) -> Vec<Program> {
    let n = works.len();
    (0..n)
        .map(|rank| {
            let per_iter = works[rank] / u64::from(iterations.max(1));
            let load = load_for(rank);
            let neighbours = ring_neighbours(rank, n);
            let mut b = ProgramBuilder::new()
                .phase(TracePhase::Init)
                .compute(WorkSpec::new(load.clone(), per_iter / 10))
                .barrier()
                .phase(TracePhase::Body);
            let load2 = load.clone();
            b = b.repeat(iterations, move |mut it| {
                it = it.compute(WorkSpec::new(load2.clone(), per_iter));
                for &nb in &neighbours {
                    it = it.isend(nb, 0, exchange_bytes).irecv(nb, 0);
                }
                it.waitall()
            });
            b.barrier().build().named(format!("P{}", rank + 1))
        })
        .collect()
}

/// Ring neighbours of `rank` among `n` ranks.
pub fn ring_neighbours(rank: usize, n: usize) -> Vec<usize> {
    if n < 2 {
        return vec![];
    }
    let left = (rank + n - 1) % n;
    let right = (rank + 1) % n;
    if left == right {
        vec![right]
    } else {
        vec![left, right]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loads;

    #[test]
    fn ring_neighbours_wrap() {
        assert_eq!(ring_neighbours(0, 4), vec![3, 1]);
        assert_eq!(ring_neighbours(3, 4), vec![2, 0]);
        assert_eq!(ring_neighbours(0, 2), vec![1]);
        assert!(ring_neighbours(0, 1).is_empty());
    }

    #[test]
    fn programs_share_the_mz_shape() {
        let works = [100_000u64, 200_000, 300_000, 400_000];
        let progs = ring_programs(&works, 5, |r| loads::btmz_load(r as u64), 1024);
        assert_eq!(progs.len(), 4);
        for (r, p) in progs.iter().enumerate() {
            let ops = mtb_mpisim::interp::flatten(p, r);
            assert_eq!(mtb_mpisim::interp::count_sync_epochs(&ops), 2);
            let waitalls = ops
                .iter()
                .filter(|o| matches!(o, mtb_mpisim::interp::FlatOp::WaitAll))
                .count();
            assert_eq!(waitalls, 5);
        }
    }
}
