//! BT-MZ — the NAS Block Tri-diagonal Multi-Zone benchmark
//! (Section VII-B).
//!
//! BT-MZ solves the unsteady compressible Navier-Stokes equations on a
//! multi-zone mesh; zones have very different sizes, so the per-rank work
//! is badly imbalanced (the paper's class A with 4 ranks shows ranks busy
//! 17.6% / 28.9% / 66.5% / 99.7% of the time in the reference case).
//! Every iteration each rank computes on its zones, then exchanges
//! boundary data with its neighbours via `mpi_isend`/`mpi_irecv` and
//! blocks in `mpi_waitall` — synchronizing with neighbours, not globally.
//!
//! The per-rank totals below reproduce Table V's case-A compute shares;
//! the 2-rank variant models the paper's ST row, where BT-MZ repartitions
//! its zones over 2 processes (still imbalanced, about 1:2).

use crate::loads;
use mtb_mpisim::program::{Program, ProgramBuilder, TracePhase, WorkSpec};
use mtb_oskernel::CtxAddr;

/// Work of the heaviest rank (instructions) in the 4-rank configuration.
pub const P4_TOTAL: u64 = 306_000_000_000;

/// Per-rank work fractions of [`P4_TOTAL`] for 4 ranks, from Table V
/// case A compute percentages.
pub const WORK_FRACTIONS_4: [f64; 4] = [0.176, 0.289, 0.665, 1.0];

/// Per-rank work (instructions) for the 2-rank (ST-mode) partition, from
/// Table V's ST row.
pub const WORK_2: [u64; 2] = [257_000_000_000, 517_000_000_000];

/// Boundary-exchange payload per neighbour per iteration (bytes). Small:
/// the paper reports communication at ~0.1% of execution time.
pub const EXCHANGE_BYTES: u64 = 64 << 10;

/// Within-rank zone size proportions: BT-MZ class A has 16 zones of very
/// different sizes; each rank's contiguous block of 4 is itself uneven.
pub const ZONE_SPLIT: [f64; 4] = [0.13, 0.20, 0.28, 0.39];

/// The 16 zone sizes (instructions, paper scale): contiguous groups of 4
/// reproduce the published per-rank compute shares
/// ([`WORK_FRACTIONS_4`]). Zone `4r + k` belongs to rank `r` in the
/// default (contiguous) partition.
pub fn zone_sizes() -> Vec<u64> {
    let mut zones = Vec::with_capacity(16);
    for frac in WORK_FRACTIONS_4 {
        let group = P4_TOTAL as f64 * frac;
        for split in ZONE_SPLIT {
            zones.push((group * split) as u64);
        }
    }
    zones
}

/// The contiguous zone partition BT-MZ uses by default: rank `r` owns
/// zones `4r..4r+4`. This is the imbalanced reference.
pub fn contiguous_partition(n_ranks: usize) -> Vec<Vec<usize>> {
    let zones = zone_sizes().len();
    let per = zones / n_ranks;
    (0..n_ranks)
        .map(|r| (r * per..(r + 1) * per).collect())
        .collect()
}

/// BT-MZ generator configuration.
#[derive(Debug, Clone)]
pub struct BtMzConfig {
    /// 4 (SMT experiments) or 2 (the ST row).
    pub ranks: usize,
    /// Iterations (the paper runs class A for 200).
    pub iterations: u32,
    /// Work multiplier (1.0 = paper scale).
    pub scale: f64,
    /// Stream seed.
    pub seed: u64,
    /// Optional zone partition overriding the default contiguous one:
    /// `partition[rank]` lists the zone indices the rank owns (see
    /// [`zone_sizes`]). Used by the data-redistribution baseline.
    pub partition: Option<Vec<Vec<usize>>>,
    /// Boundary-exchange payload per neighbour per iteration.
    pub exchange_bytes: u64,
}

impl Default for BtMzConfig {
    fn default() -> Self {
        BtMzConfig {
            ranks: 4,
            iterations: 200,
            scale: 1.0,
            seed: 0x4254_4d5a, // "BTMZ"
            partition: None,
            exchange_bytes: EXCHANGE_BYTES,
        }
    }
}

impl BtMzConfig {
    /// A cheap configuration for unit tests.
    pub fn tiny() -> BtMzConfig {
        BtMzConfig {
            iterations: 10,
            scale: 1e-3,
            ..Default::default()
        }
    }

    /// The 2-rank partition used for the ST-mode comparison row.
    pub fn st_mode() -> BtMzConfig {
        BtMzConfig {
            ranks: 2,
            ..Default::default()
        }
    }

    /// Total instructions assigned to `rank` (from the zone partition if
    /// one was set, else the published per-rank shares).
    pub fn work_of(&self, rank: usize) -> u64 {
        if let Some(part) = &self.partition {
            let zones = zone_sizes();
            let total: u64 = part[rank].iter().map(|&z| zones[z]).sum();
            return (total as f64 * self.scale) as u64;
        }
        let total = match self.ranks {
            2 => WORK_2[rank] as f64,
            _ => P4_TOTAL as f64 * WORK_FRACTIONS_4[rank],
        };
        (total * self.scale) as u64
    }

    /// Use an explicit zone partition (e.g. an LPT-rebalanced one).
    pub fn with_partition(mut self, partition: Vec<Vec<usize>>) -> BtMzConfig {
        assert_eq!(
            partition.len(),
            self.ranks,
            "partition must cover every rank"
        );
        self.partition = Some(partition);
        self
    }

    /// Ring neighbours of `rank`.
    pub fn neighbours(&self, rank: usize) -> Vec<usize> {
        if self.ranks < 2 {
            return vec![];
        }
        let left = (rank + self.ranks - 1) % self.ranks;
        let right = (rank + 1) % self.ranks;
        if left == right {
            vec![right]
        } else {
            vec![left, right]
        }
    }

    /// Build the rank programs: init barrier, then
    /// `iterations x { compute; exchange; waitall }`, then a final
    /// barrier.
    pub fn programs(&self) -> Vec<Program> {
        (0..self.ranks)
            .map(|rank| {
                let per_iter = self.work_of(rank) / u64::from(self.iterations.max(1));
                let load = loads::btmz_load(self.seed.wrapping_add(rank as u64));
                let neighbours = self.neighbours(rank);
                let mut b = ProgramBuilder::new()
                    .phase(TracePhase::Init)
                    // Small initialization compute, then the start barrier
                    // visible in Figure 3.
                    .compute(WorkSpec::new(load.clone(), per_iter / 10))
                    .barrier()
                    .phase(TracePhase::Body);
                let load2 = load.clone();
                let nb = neighbours.clone();
                let xbytes = self.exchange_bytes;
                b = b.repeat(self.iterations, move |mut it| {
                    it = it.compute(WorkSpec::new(load2.clone(), per_iter));
                    for &n in &nb {
                        it = it.isend(n, 0, xbytes).irecv(n, 0);
                    }
                    it.waitall()
                });
                b.barrier().build().named(format!("P{}", rank + 1))
            })
            .collect()
    }

    /// The reference placement (case A): rank i on cpu i.
    pub fn placement_reference(&self) -> Vec<CtxAddr> {
        (0..self.ranks).map(CtxAddr::from_cpu).collect()
    }

    /// The paper's balanced placement (cases B-D): P1+P4 on core 1,
    /// P2+P3 on core 2 — pair the heaviest rank with the lightest.
    pub fn placement_paired(&self) -> Vec<CtxAddr> {
        assert_eq!(self.ranks, 4, "paired placement is for the 4-rank runs");
        vec![
            CtxAddr::from_cpu(0), // P1 -> core 0
            CtxAddr::from_cpu(2), // P2 -> core 1
            CtxAddr::from_cpu(3), // P3 -> core 1
            CtxAddr::from_cpu(1), // P4 -> core 0 (with P1)
        ]
    }

    /// ST-mode placement: one rank per core, sibling contexts off.
    pub fn placement_st(&self) -> Vec<CtxAddr> {
        assert_eq!(self.ranks, 2);
        vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_distribution_matches_table5_shape() {
        let cfg = BtMzConfig::default();
        let w: Vec<u64> = (0..4).map(|r| cfg.work_of(r)).collect();
        assert!(w[0] < w[1] && w[1] < w[2] && w[2] < w[3]);
        let ratio = w[3] as f64 / w[0] as f64;
        assert!((5.0..6.5).contains(&ratio), "P4/P1 work ratio {ratio}");
    }

    #[test]
    fn st_partition_is_one_to_two() {
        let cfg = BtMzConfig::st_mode();
        let ratio = cfg.work_of(1) as f64 / cfg.work_of(0) as f64;
        assert!((1.8..2.3).contains(&ratio), "ST imbalance {ratio}");
    }

    #[test]
    fn neighbours_form_a_ring() {
        let cfg = BtMzConfig::default();
        assert_eq!(cfg.neighbours(0), vec![3, 1]);
        assert_eq!(cfg.neighbours(2), vec![1, 3]);
        let two = BtMzConfig::st_mode();
        assert_eq!(two.neighbours(0), vec![1], "2-rank ring has one neighbour");
    }

    #[test]
    fn programs_are_neighbour_synchronized_not_global() {
        let cfg = BtMzConfig::tiny();
        let progs = cfg.programs();
        for (r, p) in progs.iter().enumerate() {
            let ops = mtb_mpisim::interp::flatten(p, r);
            // Exactly two global collectives: init + final barrier.
            assert_eq!(mtb_mpisim::interp::count_sync_epochs(&ops), 2);
            // And waitalls per iteration.
            let waitalls = ops
                .iter()
                .filter(|o| matches!(o, mtb_mpisim::interp::FlatOp::WaitAll))
                .count();
            assert_eq!(waitalls, 10);
        }
    }

    #[test]
    fn paired_placement_puts_p1_with_p4() {
        let cfg = BtMzConfig::default();
        let pl = cfg.placement_paired();
        assert_eq!(pl[0].core, pl[3].core, "P1 and P4 share a core");
        assert_eq!(pl[1].core, pl[2].core, "P2 and P3 share a core");
        assert_ne!(pl[0].core, pl[1].core);
    }

    #[test]
    fn st_placement_uses_one_context_per_core() {
        let cfg = BtMzConfig::st_mode();
        let pl = cfg.placement_st();
        assert_ne!(pl[0].core, pl[1].core);
    }

    #[test]
    fn zones_sum_to_the_published_shares() {
        let zones = zone_sizes();
        assert_eq!(zones.len(), 16);
        let cfg = BtMzConfig::default();
        for r in 0..4 {
            let group: u64 = zones[4 * r..4 * r + 4].iter().sum();
            let published = cfg.work_of(r);
            let rel = (group as f64 - published as f64).abs() / published as f64;
            assert!(rel < 0.001, "rank {r}: zone sum {group} vs {published}");
        }
    }

    #[test]
    fn contiguous_partition_matches_work_of() {
        let cfg = BtMzConfig::default().with_partition(contiguous_partition(4));
        let plain = BtMzConfig::default();
        for r in 0..4 {
            let rel =
                (cfg.work_of(r) as f64 - plain.work_of(r) as f64).abs() / plain.work_of(r) as f64;
            assert!(rel < 0.001, "rank {r}");
        }
    }

    #[test]
    fn custom_partition_changes_work() {
        // Give rank 0 every zone.
        let all: Vec<usize> = (0..16).collect();
        let part = vec![all, vec![], vec![], vec![]];
        let cfg = BtMzConfig::default().with_partition(part);
        assert_eq!(cfg.work_of(1), 0);
        let total: u64 = zone_sizes().iter().sum();
        let rel = (cfg.work_of(0) as f64 - total as f64).abs() / total as f64;
        assert!(rel < 1e-9);
    }
}
