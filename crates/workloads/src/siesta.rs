//! SIESTA — ab-initio order-N materials simulation (Section VII-C).
//!
//! SIESTA is the paper's "real application": a self-consistent density
//! functional code whose imbalance comes from both the algorithm and the
//! input set. Its defining property for the balancing study is that the
//! behaviour is **not constant across iterations** — "the process that
//! computes the most is not the same across all the iterations" — which is
//! why the paper's static priorities help less than on BT-MZ (8.1% best
//! case) and motivate the dynamic policy of Section VIII.
//!
//! The model: an initialization phase (~12% of runtime), a body of
//! iterations whose per-rank load is the mean Table VI share modulated by
//! a deterministic pseudo-random per-iteration factor, and a finalization
//! phase (~13%). Each iteration exchanges data with a rotating subset of
//! peers and ends at a global synchronization point.

use crate::loads;
use mtb_mpisim::program::{LoopCtx, Program, ProgramBuilder, TracePhase, WorkSpec};
use mtb_oskernel::CtxAddr;
use mtb_smtsim::rng::SplitMix64;

/// Total instructions of the heaviest rank (P4) at paper scale.
pub const P4_TOTAL: u64 = 1_560_000_000_000;

/// Mean per-rank work fractions of [`P4_TOTAL`], from Table VI case A
/// compute percentages.
pub const MEAN_FRACTIONS: [f64; 4] = [0.8125, 0.805, 0.878, 1.0];

/// 2-rank (ST row) per-rank totals, from Table VI's ST row shape.
pub const WORK_2: [u64; 2] = [2_430_000_000_000, 2_780_000_000_000];

/// Share of a rank's work done in the initialization phase.
pub const INIT_SHARE: f64 = 0.12;
/// Share done in the finalization phase.
pub const FINAL_SHARE: f64 = 0.13;

/// Exchange payload per peer per iteration.
pub const EXCHANGE_BYTES: u64 = 256 << 10;

/// SIESTA generator configuration.
#[derive(Debug, Clone)]
pub struct SiestaConfig {
    /// Ranks (4, or 2 for the ST row).
    pub ranks: usize,
    /// Body iterations.
    pub iterations: u32,
    /// Relative amplitude of the per-iteration load variation (0.25 makes
    /// the bottleneck move between ranks like the paper describes).
    pub variation: f64,
    /// Work multiplier (1.0 = paper scale).
    pub scale: f64,
    /// Seed for the load variation and streams.
    pub seed: u64,
    /// Boundary-exchange payload per partner per iteration (defaults to
    /// the paper-scale [`EXCHANGE_BYTES`]).
    pub exchange_bytes: u64,
}

impl Default for SiestaConfig {
    fn default() -> Self {
        SiestaConfig {
            ranks: 4,
            iterations: 40,
            variation: 0.25,
            scale: 1.0,
            seed: 0x5349_4553, // "SIES"
            exchange_bytes: EXCHANGE_BYTES,
        }
    }
}

impl SiestaConfig {
    /// A cheap configuration for unit tests.
    pub fn tiny() -> SiestaConfig {
        SiestaConfig {
            iterations: 6,
            scale: 1e-4,
            ..Default::default()
        }
    }

    /// The 2-rank partition of the ST row.
    pub fn st_mode() -> SiestaConfig {
        SiestaConfig {
            ranks: 2,
            ..Default::default()
        }
    }

    /// Mean total instructions of `rank`.
    pub fn mean_work_of(&self, rank: usize) -> u64 {
        let total = match self.ranks {
            2 => WORK_2[rank] as f64,
            _ => P4_TOTAL as f64 * MEAN_FRACTIONS[rank],
        };
        (total * self.scale) as u64
    }

    /// Per-iteration load multiplier for (rank, iteration): deterministic,
    /// mean ≈ 1, in `[1-variation, 1+variation]`.
    pub fn iter_factor(&self, rank: usize, iteration: u32) -> f64 {
        let mut rng = SplitMix64::new(
            self.seed
                ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(iteration).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        1.0 + self.variation * (2.0 * rng.unit_f64() - 1.0)
    }

    /// The exchange partner `rank` *sends to* at `iteration`: a rotating
    /// shift permutation, so every send has a matching receive and the
    /// peer subset changes every iteration (the paper: "each process
    /// exchanges data only with a subset of the other processes").
    pub fn send_peer(&self, rank: usize, iteration: u32) -> Option<usize> {
        if self.ranks < 2 {
            return None;
        }
        let s = 1 + (iteration as usize % (self.ranks - 1));
        Some((rank + s) % self.ranks)
    }

    /// The partner `rank` *receives from* at `iteration` (the rank whose
    /// [`SiestaConfig::send_peer`] is `rank`).
    pub fn recv_peer(&self, rank: usize, iteration: u32) -> Option<usize> {
        if self.ranks < 2 {
            return None;
        }
        let s = 1 + (iteration as usize % (self.ranks - 1));
        Some((rank + self.ranks - s) % self.ranks)
    }

    /// Build the rank programs. Iterations are emitted unrolled because
    /// the exchange partners rotate per iteration; the per-iteration load
    /// uses [`Stmt::DynCompute`] semantics via [`SiestaConfig::iter_factor`].
    ///
    /// [`Stmt::DynCompute`]: mtb_mpisim::program::Stmt::DynCompute
    pub fn programs(&self) -> Vec<Program> {
        (0..self.ranks)
            .map(|rank| {
                let mean = self.mean_work_of(rank) as f64;
                let init_w = (mean * INIT_SHARE) as u64;
                let final_w = (mean * FINAL_SHARE) as u64;
                let body_total = mean * (1.0 - INIT_SHARE - FINAL_SHARE);
                let per_iter_mean = body_total / f64::from(self.iterations.max(1));
                let load = loads::siesta_load(self.seed.wrapping_add(rank as u64));
                let cfg = self.clone();
                let load_body = load.clone();

                let mut b = ProgramBuilder::new()
                    .phase(TracePhase::Init)
                    .compute(WorkSpec::new(load.clone(), init_w))
                    .barrier()
                    .phase(TracePhase::Body);
                for i in 0..self.iterations {
                    let cfg2 = cfg.clone();
                    let load2 = load_body.clone();
                    b = b.dyn_compute(move |ctx: &LoopCtx| {
                        // Unrolled: the closure captures its iteration.
                        let f = cfg2.iter_factor(ctx.rank, i);
                        WorkSpec::new(load2.clone(), (per_iter_mean * f) as u64)
                    });
                    if let (Some(to), Some(from)) =
                        (self.send_peer(rank, i), self.recv_peer(rank, i))
                    {
                        b = b.isend(to, i, self.exchange_bytes).irecv(from, i).waitall();
                    }
                    b = b.barrier();
                }
                b.phase(TracePhase::Final)
                    .compute(WorkSpec::new(load, final_w))
                    .build()
                    .named(format!("P{}", rank + 1))
            })
            .collect()
    }

    /// Reference placement (case A): rank i on cpu i (P1+P2 core 1,
    /// P3+P4 core 2).
    pub fn placement_reference(&self) -> Vec<CtxAddr> {
        (0..self.ranks).map(CtxAddr::from_cpu).collect()
    }

    /// The paper's cases B-D placement: P2+P3 on core 1, P1+P4 on
    /// core 2 (pair ranks with similar load, and the lightest with the
    /// heaviest).
    pub fn placement_paired(&self) -> Vec<CtxAddr> {
        assert_eq!(self.ranks, 4, "paired placement is for 4-rank runs");
        vec![
            CtxAddr::from_cpu(2), // P1 -> core 1
            CtxAddr::from_cpu(0), // P2 -> core 0
            CtxAddr::from_cpu(1), // P3 -> core 0 (with P2)
            CtxAddr::from_cpu(3), // P4 -> core 1 (with P1)
        ]
    }

    /// ST-mode placement: one rank per core.
    pub fn placement_st(&self) -> Vec<CtxAddr> {
        assert_eq!(self.ranks, 2);
        vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_work_follows_table6_shape() {
        let cfg = SiestaConfig::default();
        let w: Vec<u64> = (0..4).map(|r| cfg.mean_work_of(r)).collect();
        assert!(w[3] > w[2] && w[2] > w[0]);
        let spread = w[3] as f64 / w[1] as f64;
        assert!((1.15..1.35).contains(&spread), "P4/P2 mean ratio {spread}");
    }

    #[test]
    fn iter_factors_vary_and_are_deterministic() {
        let cfg = SiestaConfig::default();
        assert_eq!(cfg.iter_factor(2, 7), cfg.iter_factor(2, 7));
        let factors: Vec<f64> = (0..20).map(|i| cfg.iter_factor(0, i)).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "variation must be visible: {min}..{max}");
        for f in factors {
            assert!((1.0 - cfg.variation..=1.0 + cfg.variation).contains(&f));
        }
    }

    #[test]
    fn bottleneck_moves_between_iterations() {
        // The paper's key SIESTA property: the most-loaded rank changes
        // from iteration to iteration.
        let cfg = SiestaConfig::default();
        let bottleneck_of = |i: u32| {
            (0..4)
                .map(|r| (r, MEAN_FRACTIONS[r] * cfg.iter_factor(r, i)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0
        };
        let bottlenecks: std::collections::HashSet<usize> = (0..40).map(bottleneck_of).collect();
        assert!(
            bottlenecks.len() >= 2,
            "bottleneck must rotate: {bottlenecks:?}"
        );
    }

    #[test]
    fn programs_have_init_body_final_structure() {
        let cfg = SiestaConfig::tiny();
        let progs = cfg.programs();
        assert_eq!(progs.len(), 4);
        let ops = mtb_mpisim::interp::flatten(&progs[0], 0);
        // 1 init barrier + 6 body barriers.
        assert_eq!(mtb_mpisim::interp::count_sync_epochs(&ops), 7);
    }

    #[test]
    fn paired_placement_matches_paper_cases() {
        let cfg = SiestaConfig::default();
        let pl = cfg.placement_paired();
        assert_eq!(pl[1].core, pl[2].core, "P2 and P3 together");
        assert_eq!(pl[0].core, pl[3].core, "P1 and P4 together");
    }

    #[test]
    fn peers_rotate_and_match() {
        let cfg = SiestaConfig::default();
        let p0: Vec<usize> = (0..3).filter_map(|i| cfg.send_peer(0, i)).collect();
        assert_eq!(p0, vec![1, 2, 3], "peer rotates over the other ranks");
        // Matching invariant: if r sends to p, then p receives from r.
        for i in 0..10 {
            for r in 0..4 {
                let p = cfg.send_peer(r, i).unwrap();
                assert_eq!(cfg.recv_peer(p, i), Some(r), "iter {i}, rank {r}");
            }
        }
    }
}
