//! The synthetic example of Figure 1.
//!
//! Four processes on two cores; P1 computes much longer than the others,
//! so P2-P4 idle at the synchronization point. Figure 1(b) shows the
//! expected effect of giving P1 more hardware resources: P1 speeds up, its
//! core-mate P2 slows down but stays off the critical path, and the whole
//! application finishes earlier.

use crate::loads;
use mtb_mpisim::program::{Program, ProgramBuilder, TracePhase, WorkSpec};
use mtb_oskernel::CtxAddr;

/// Synthetic-imbalance generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Work of the three balanced processes (instructions).
    pub base_work: u64,
    /// Multiplier for P1's work (Figure 1 draws roughly 3x).
    pub skew: f64,
    /// Barrier-separated repetitions.
    pub iterations: u32,
    /// Stream seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            base_work: 30_000_000_000,
            skew: 3.0,
            iterations: 4,
            seed: 0xF16,
        }
    }
}

impl SyntheticConfig {
    /// A cheap configuration for unit tests.
    pub fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            base_work: 100_000,
            iterations: 2,
            ..Default::default()
        }
    }

    /// Instructions per iteration for `rank`.
    pub fn work_of(&self, rank: usize) -> u64 {
        let total = if rank == 0 {
            self.base_work as f64 * self.skew
        } else {
            self.base_work as f64
        };
        (total / f64::from(self.iterations.max(1))) as u64
    }

    /// The four programs (P1 heavy, P2-P4 equal).
    pub fn programs(&self) -> Vec<Program> {
        (0..4)
            .map(|rank| {
                let per_iter = self.work_of(rank);
                let load = loads::btmz_load(self.seed.wrapping_add(rank as u64));
                ProgramBuilder::new()
                    .phase(TracePhase::Body)
                    .repeat(self.iterations, |b| {
                        b.compute(WorkSpec::new(load.clone(), per_iter)).barrier()
                    })
                    .build()
                    .named(format!("P{}", rank + 1))
            })
            .collect()
    }

    /// Figure 1 placement: P1+P2 share core 1, P3+P4 share core 2.
    pub fn placement(&self) -> Vec<CtxAddr> {
        (0..4).map(CtxAddr::from_cpu).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_is_the_heavy_process() {
        let cfg = SyntheticConfig::default();
        assert!(cfg.work_of(0) > 2 * cfg.work_of(1));
        assert_eq!(cfg.work_of(1), cfg.work_of(2));
        assert_eq!(cfg.work_of(2), cfg.work_of(3));
    }

    #[test]
    fn four_programs_with_barriers() {
        let cfg = SyntheticConfig::tiny();
        let progs = cfg.programs();
        assert_eq!(progs.len(), 4);
        let ops = mtb_mpisim::interp::flatten(&progs[0], 0);
        assert_eq!(mtb_mpisim::interp::count_sync_epochs(&ops), 2);
    }
}
