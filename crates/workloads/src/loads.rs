//! Canonical workload profiles.
//!
//! The paper's three applications respond very differently to hardware
//! priorities, and the difference is explained by *what bounds their
//! throughput* (DESIGN.md §5 reconstructs this from the published tables):
//!
//! * **MetBench** loads are dense compute loops: single-thread IPC ≈ 2.85
//!   on a 5-wide decode. At equal SMT priority each thread gets ~2.5
//!   decode slots/cycle — right at the bound — so shifting decode slots
//!   moves performance strongly (Table IV's 4x collapse at priority
//!   difference 3).
//! * **BT-MZ** is even more ILP-dense (ST IPC ≈ 3.2): threads are
//!   *supply-limited* at equal priority, so the bottleneck rank gains a
//!   lot from extra slots — the paper's best case (18%).
//! * **SIESTA** is memory-bound (ST IPC ≈ 1.6, large working set): a 1/4
//!   decode share still covers its demand, so priorities barely hurt the
//!   penalized rank; gains come from pairing the bottleneck with
//!   often-idle ranks (8.1%), and only a large priority difference
//!   inverts the imbalance (case D).
//!
//! Each function also supplies a concrete instruction stream so the same
//! workloads run on the cycle-level core.

use mtb_smtsim::inst::StreamSpec;
use mtb_smtsim::model::{Workload, WorkloadProfile};

/// MetBench compute load: dense, cache-resident, high ILP.
pub fn metbench_load(seed: u64) -> Workload {
    Workload::with_profile(
        "metbench",
        StreamSpec {
            fx: 4,
            fp: 2,
            ls: 3,
            br: 1,
            dep_dist: 12,
            working_set: 16 << 10,
            code_kb: 16,
            seed,
        },
        WorkloadProfile::new(2.85, 0.05, 0.02),
    )
}

/// MetBench `fpu` unit-stress load (floating-point dependency chains).
pub fn fpu_load(seed: u64) -> Workload {
    Workload::from_spec("metbench-fpu", StreamSpec::fpu_bound(seed))
}

/// MetBench `l2` unit-stress load (working set resident in L2).
pub fn l2_load(seed: u64) -> Workload {
    Workload::from_spec("metbench-l2", StreamSpec::l2_bound(seed))
}

/// MetBench `mem` unit-stress load (streams through memory).
pub fn mem_load(seed: u64) -> Workload {
    Workload::from_spec("metbench-mem", StreamSpec::mem_bound(seed))
}

/// MetBench `branch` unit-stress load.
pub fn branch_load(seed: u64) -> Workload {
    Workload::from_spec("metbench-branch", StreamSpec::branch_bound(seed))
}

/// BT-MZ solver load: very high ILP structured-mesh arithmetic.
pub fn btmz_load(seed: u64) -> Workload {
    Workload::with_profile(
        "bt-mz",
        StreamSpec {
            fx: 3,
            fp: 3,
            ls: 3,
            br: 1,
            dep_dist: 16,
            working_set: 24 << 10,
            code_kb: 32,
            seed,
        },
        WorkloadProfile::new(3.2, 0.05, 0.05),
    )
}

/// SIESTA load: memory-bound sparse linear algebra.
pub fn siesta_load(seed: u64) -> Workload {
    Workload::with_profile(
        "siesta",
        StreamSpec {
            fx: 2,
            fp: 3,
            ls: 4,
            br: 1,
            dep_dist: 5,
            working_set: 8 << 20,
            code_kb: 256,
            seed,
        },
        WorkloadProfile::new(1.8, 0.2, 0.7),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_encode_the_calibration_story() {
        let met = metbench_load(1).profile;
        let bt = btmz_load(1).profile;
        let si = siesta_load(1).profile;
        // Decode-boundness ordering: BT-MZ > MetBench > SIESTA.
        assert!(bt.ipc_st > met.ipc_st);
        assert!(met.ipc_st > si.ipc_st);
        // SIESTA is the memory-bound one.
        assert!(si.mem_intensity > bt.mem_intensity);
        assert!(si.mem_intensity > met.mem_intensity);
        // MetBench/BT-MZ sit above the equal-priority supply (2.5), SIESTA
        // far below it — the crux of the priority-sensitivity difference.
        assert!(bt.ipc_st > 2.5);
        assert!(met.ipc_st > 2.5);
        assert!(si.ipc_st < 2.5);
    }

    #[test]
    fn unit_stress_loads_have_distinct_characters() {
        let fpu = fpu_load(1).profile;
        let mem = mem_load(1).profile;
        let l2 = l2_load(1).profile;
        assert!(fpu.mem_intensity < 0.1, "fpu load is cache resident");
        assert!(mem.mem_intensity > 0.3, "mem load misses everywhere");
        assert!(l2.mem_intensity < mem.mem_intensity);
        assert!(fpu.ipc_st < 1.5, "dependency-chained FP is slow");
    }

    #[test]
    fn loads_are_seeded_deterministically() {
        assert_eq!(metbench_load(7), metbench_load(7));
        assert_ne!(metbench_load(7).stream.seed, metbench_load(8).stream.seed);
    }
}
