//! SP-MZ and LU-MZ — the balanced multi-zone benchmarks.
//!
//! Unlike BT-MZ, the Scalar-Pentadiagonal and Lower-Upper multi-zone
//! benchmarks partition their mesh into *equal-size* zones (Jin & van der
//! Wijngaart), so their per-rank work is balanced by construction. They
//! are the control group for the paper's method: with nothing to
//! rebalance, priorities should gain nothing — and a correct dynamic
//! policy should leave them alone (EXT-8).

use crate::loads;
use crate::mz::ring_programs;
use mtb_mpisim::program::Program;
use mtb_oskernel::CtxAddr;
use mtb_smtsim::model::Workload;

/// Which balanced multi-zone benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MzKind {
    /// Scalar-Pentadiagonal multi-zone: many small equal zones, frequent
    /// exchanges.
    SpMz,
    /// Lower-Upper multi-zone: fewer, bigger iterations (the LU solver's
    /// pipelined sweeps amortize synchronization).
    LuMz,
}

/// Total per-rank work at paper-comparable scale (instructions). Chosen
/// so a 4-rank run lands in the same tens-of-seconds band as BT-MZ
/// class A.
pub const WORK_PER_RANK: u64 = 130_000_000_000;

/// Generator for the balanced multi-zone benchmarks.
#[derive(Debug, Clone)]
pub struct SpMzConfig {
    /// Which benchmark.
    pub kind: MzKind,
    /// Rank count.
    pub ranks: usize,
    /// Iterations (SP-MZ uses many short ones, LU-MZ fewer long ones).
    pub iterations: u32,
    /// Work multiplier.
    pub scale: f64,
    /// Stream seed.
    pub seed: u64,
    /// Boundary-exchange payload per neighbour per iteration.
    pub exchange_bytes: u64,
}

impl SpMzConfig {
    /// SP-MZ defaults: 400 short iterations.
    pub fn sp() -> SpMzConfig {
        SpMzConfig {
            kind: MzKind::SpMz,
            ranks: 4,
            iterations: 400,
            scale: 1.0,
            seed: 0x5350_4d5a, // "SPMZ"
            exchange_bytes: 32 << 10,
        }
    }

    /// LU-MZ defaults: 75 long iterations.
    pub fn lu() -> SpMzConfig {
        SpMzConfig {
            kind: MzKind::LuMz,
            ranks: 4,
            iterations: 75,
            scale: 1.0,
            seed: 0x4c55_4d5a, // "LUMZ"
            exchange_bytes: 128 << 10,
        }
    }

    /// A cheap configuration for unit tests.
    pub fn tiny(kind: MzKind) -> SpMzConfig {
        let mut cfg = match kind {
            MzKind::SpMz => SpMzConfig::sp(),
            MzKind::LuMz => SpMzConfig::lu(),
        };
        cfg.iterations = 8;
        cfg.scale = 1e-3;
        cfg
    }

    /// Per-rank total work — equal by construction.
    pub fn work_of(&self, _rank: usize) -> u64 {
        (WORK_PER_RANK as f64 * self.scale) as u64
    }

    /// The per-rank workload (both benchmarks are dense solvers; LU's
    /// sweeps are slightly more memory-bound).
    pub fn load(&self, rank: usize) -> Workload {
        match self.kind {
            MzKind::SpMz => loads::btmz_load(self.seed.wrapping_add(rank as u64)),
            MzKind::LuMz => loads::metbench_load(self.seed.wrapping_add(rank as u64)),
        }
    }

    /// Build the rank programs.
    pub fn programs(&self) -> Vec<Program> {
        let works: Vec<u64> = (0..self.ranks).map(|r| self.work_of(r)).collect();
        ring_programs(
            &works,
            self.iterations,
            |r| self.load(r),
            self.exchange_bytes,
        )
    }

    /// Identity placement.
    pub fn placement(&self) -> Vec<CtxAddr> {
        (0..self.ranks).map(CtxAddr::from_cpu).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_are_equal() {
        let cfg = SpMzConfig::sp();
        assert_eq!(cfg.work_of(0), cfg.work_of(3));
        let lu = SpMzConfig::lu();
        assert_eq!(lu.work_of(1), lu.work_of(2));
    }

    #[test]
    fn programs_build_for_both_kinds() {
        for kind in [MzKind::SpMz, MzKind::LuMz] {
            let cfg = SpMzConfig::tiny(kind);
            let progs = cfg.programs();
            assert_eq!(progs.len(), 4);
            let ops = mtb_mpisim::interp::flatten(&progs[0], 0);
            assert_eq!(mtb_mpisim::interp::count_sync_epochs(&ops), 2);
        }
    }

    #[test]
    fn sp_iterates_more_often_than_lu() {
        assert!(SpMzConfig::sp().iterations > 4 * SpMzConfig::lu().iterations);
    }
}
