//! Run observation utilities.
//!
//! [`WindowRecorder`] captures the per-epoch compute/wait windows the
//! engine reports — the raw material for offline analysis of dynamic
//! behaviour (which rank was the bottleneck when, how much the balance
//! moved between iterations). Composable with the policies through
//! [`crate::remap::Composite`].

use mtb_mpisim::engine::{Observer, RankWindow};
use mtb_oskernel::Machine;
use mtb_trace::stats::Summary;
use mtb_trace::Cycles;

/// Records every epoch's windows (and the priorities in force).
#[derive(Debug, Default)]
pub struct WindowRecorder {
    epochs: Vec<Vec<RankWindow>>,
    priorities: Vec<Vec<u8>>,
}

impl WindowRecorder {
    /// An empty recorder.
    pub fn new() -> WindowRecorder {
        WindowRecorder::default()
    }

    /// The recorded epochs, in order.
    pub fn epochs(&self) -> &[Vec<RankWindow>] {
        &self.epochs
    }

    /// The hardware priorities (per rank) observed at each epoch.
    pub fn priorities(&self) -> &[Vec<u8>] {
        &self.priorities
    }

    /// Which rank computed longest in each epoch.
    pub fn bottleneck_history(&self) -> Vec<usize> {
        self.epochs
            .iter()
            .filter_map(|w| w.iter().max_by_key(|x| x.compute).map(|x| x.rank))
            .collect()
    }

    /// Distribution of one rank's per-epoch compute times.
    pub fn compute_summary(&self, rank: usize) -> Option<Summary> {
        let samples: Vec<Cycles> = self
            .epochs
            .iter()
            .flat_map(|w| w.iter().filter(|x| x.rank == rank).map(|x| x.compute))
            .collect();
        Summary::of(&samples)
    }

    /// How often the bottleneck changed identity between consecutive
    /// epochs — the "dynamism" the paper says distinguishes SIESTA from
    /// BT-MZ.
    pub fn bottleneck_moves(&self) -> usize {
        let h = self.bottleneck_history();
        h.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl Observer for WindowRecorder {
    fn on_epoch(&mut self, _epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        self.epochs.push(windows.to_vec());
        self.priorities.push(
            (0..windows.len())
                .map(|r| machine.pcb(r).map_or(4, |p| p.hmt_priority.value()))
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute_with, StaticRun};
    use mtb_workloads::metbench::MetBenchConfig;
    use mtb_workloads::siesta::SiestaConfig;

    #[test]
    fn recorder_sees_every_epoch() {
        let cfg = MetBenchConfig {
            iterations: 12,
            scale: 1e-3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let mut rec = WindowRecorder::new();
        let _ = execute_with(StaticRun::new(&progs, cfg.placement()), &mut rec).unwrap();
        assert_eq!(rec.epochs().len(), 12, "one epoch per barrier");
        assert_eq!(rec.priorities().len(), 12);
        assert!(rec.priorities().iter().all(|p| p == &vec![4, 4, 4, 4]));
    }

    #[test]
    fn metbench_bottleneck_is_static_siestas_moves() {
        let met = MetBenchConfig {
            iterations: 15,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec_met = WindowRecorder::new();
        let _ = execute_with(
            StaticRun::new(&met.programs(), met.placement()),
            &mut rec_met,
        )
        .unwrap();

        let sie = SiestaConfig {
            iterations: 15,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec_sie = WindowRecorder::new();
        let _ = execute_with(
            StaticRun::new(&sie.programs(), sie.placement_reference()),
            &mut rec_sie,
        )
        .unwrap();

        // The paper's observation, measured: BT-MZ/MetBench keep one
        // bottleneck; SIESTA's moves between iterations.
        assert!(
            rec_sie.bottleneck_moves() > rec_met.bottleneck_moves(),
            "SIESTA must be more dynamic: {} vs {}",
            rec_sie.bottleneck_moves(),
            rec_met.bottleneck_moves()
        );
    }

    #[test]
    fn compute_summary_reflects_load_shares() {
        let cfg = MetBenchConfig {
            iterations: 10,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec = WindowRecorder::new();
        let _ = execute_with(StaticRun::new(&cfg.programs(), cfg.placement()), &mut rec).unwrap();
        let light = rec.compute_summary(0).unwrap();
        let heavy = rec.compute_summary(1).unwrap();
        assert!(
            heavy.mean > 3.0 * light.mean,
            "{} vs {}",
            heavy.mean,
            light.mean
        );
        assert!(rec.compute_summary(9).is_none(), "no such rank");
    }
}
