//! Run observation utilities.
//!
//! [`WindowRecorder`] captures the per-epoch compute/wait windows the
//! engine reports — the raw material for offline analysis of dynamic
//! behaviour (which rank was the bottleneck when, how much the balance
//! moved between iterations). [`ProgressModel`] turns the static plan's
//! per-epoch work expectation into an online progress metric: instructions
//! retired so far vs. where the plan says each rank should be. Composable
//! with the policies through [`crate::remap::Composite`].

use mtb_mpisim::engine::{Observer, RankWindow};
use mtb_oskernel::Machine;
use mtb_trace::stats::Summary;
use mtb_trace::Cycles;

/// The static plan's expectation of per-rank progress, used by the
/// two-level controller as a reference trajectory.
///
/// `expected[e][r]` is the cumulative compute instructions rank *r*
/// should have retired once epoch *e*'s barrier releases. The table is a
/// pure function of the programs (via `mtb-verify`'s abstract
/// interpretation), so a controller driven by it stays deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressModel {
    expected: Vec<Vec<f64>>,
}

impl ProgressModel {
    /// Build from per-epoch (not cumulative) expected work:
    /// `per_epoch[e][r]` = instructions rank `r` computes in epoch `e`.
    /// Returns `None` when the table is empty or ragged.
    pub fn from_expectations(per_epoch: &[Vec<u64>]) -> Option<ProgressModel> {
        let n = per_epoch.first()?.len();
        if n == 0 || per_epoch.iter().any(|row| row.len() != n) {
            return None;
        }
        let mut cum = vec![0.0f64; n];
        let mut expected = Vec::with_capacity(per_epoch.len());
        for row in per_epoch {
            for (c, &w) in cum.iter_mut().zip(row) {
                *c += w as f64;
            }
            expected.push(cum.clone());
        }
        Some(ProgressModel { expected })
    }

    /// Derive the expectation table from the programs themselves via the
    /// static analyzer's per-phase profiles. `None` when the ranks'
    /// sync structures disagree (no common epoch grid exists).
    #[cfg(feature = "verify")]
    pub fn from_programs(programs: &[mtb_mpisim::Program]) -> Option<ProgressModel> {
        let profiles = mtb_verify::infer_profiles(programs);
        let epochs = profiles.first()?.phases.len();
        if epochs == 0 || profiles.iter().any(|p| p.phases.len() != epochs) {
            return None;
        }
        let per_epoch: Vec<Vec<u64>> = (0..epochs)
            .map(|e| profiles.iter().map(|p| p.phases[e].work).collect())
            .collect();
        ProgressModel::from_expectations(&per_epoch)
    }

    /// Number of sync epochs the plan covers.
    pub fn epochs(&self) -> usize {
        self.expected.len()
    }

    /// Total expected work per rank over the whole plan (the last
    /// cumulative row) — what the controller's plan-primed start pairs
    /// and prioritizes by.
    pub fn totals(&self) -> Vec<f64> {
        self.expected.last().cloned().unwrap_or_default()
    }

    /// Expected per-rank work in the `len` epochs following `epoch`'s
    /// barrier, clamped to the plan horizon (all zeros once the plan is
    /// exhausted). This is the controller's feedforward signal: the plan
    /// knows each iteration's load exactly, so decisions taken from it
    /// are immune to the window-to-window noise that makes purely
    /// reactive control chase its own tail on moving-bottleneck apps.
    pub fn upcoming(&self, epoch: usize, len: usize) -> Vec<f64> {
        let last = self.expected.len() - 1;
        let from = &self.expected[epoch.min(last)];
        let to = &self.expected[(epoch + len.max(1)).min(last)];
        from.iter()
            .zip(to)
            .map(|(&f, &t)| (t - f).max(0.0))
            .collect()
    }

    /// Relative progress deficit per rank at `epoch`, given cumulative
    /// retired instruction counts: 1.0 = advancing exactly at the fleet's
    /// mean pace relative to plan, above 1.0 = behind plan (deserves
    /// decode slots), below 1.0 = ahead. Epochs past the plan's horizon
    /// clamp to the last row; ranks the plan expects to be idle report
    /// 1.0. Deficits are clamped to `[0.25, 4.0]` so a cold counter can
    /// never swing a decision by more than the strong-imbalance tier.
    pub fn deficits(&self, epoch: usize, retired: &[u64]) -> Vec<f64> {
        let row = &self.expected[epoch.min(self.expected.len() - 1)];
        let pace: Vec<Option<f64>> = retired
            .iter()
            .zip(row)
            .map(|(&r, &e)| (e > 0.0).then(|| (r as f64 + 1.0) / e))
            .collect();
        let known: Vec<f64> = pace.iter().flatten().copied().collect();
        if known.is_empty() {
            return vec![1.0; retired.len()];
        }
        let mean = known.iter().sum::<f64>() / known.len() as f64;
        pace.iter()
            .map(|p| match p {
                Some(p) if *p > 0.0 => (mean / p).clamp(0.25, 4.0),
                _ => 1.0,
            })
            .collect()
    }
}

/// Per-rank time-to-barrier estimates for the window just closed, read
/// off the comm timeline: the engine reports how long each rank computed
/// and how long it then waited, so the rank with the largest compute (and
/// ~zero sync) is the one that released the barrier — every other rank's
/// `sync` cycles measure how much earlier it arrived. Returns
/// `(critical_rank, slack_by_rank)`; `None` for an empty window set.
pub fn barrier_slack(windows: &[RankWindow]) -> Option<(usize, Vec<Cycles>)> {
    let critical = windows.iter().max_by_key(|w| w.compute)?.rank;
    let mut slack = vec![0; windows.iter().map(|w| w.rank + 1).max().unwrap_or(0)];
    for w in windows {
        slack[w.rank] = w.sync;
    }
    Some((critical, slack))
}

/// Records every epoch's windows (and the priorities in force).
#[derive(Debug, Default)]
pub struct WindowRecorder {
    epochs: Vec<Vec<RankWindow>>,
    priorities: Vec<Vec<u8>>,
}

impl WindowRecorder {
    /// An empty recorder.
    pub fn new() -> WindowRecorder {
        WindowRecorder::default()
    }

    /// The recorded epochs, in order.
    pub fn epochs(&self) -> &[Vec<RankWindow>] {
        &self.epochs
    }

    /// The hardware priorities (per rank) observed at each epoch.
    pub fn priorities(&self) -> &[Vec<u8>] {
        &self.priorities
    }

    /// Which rank computed longest in each epoch.
    pub fn bottleneck_history(&self) -> Vec<usize> {
        self.epochs
            .iter()
            .filter_map(|w| w.iter().max_by_key(|x| x.compute).map(|x| x.rank))
            .collect()
    }

    /// Distribution of one rank's per-epoch compute times.
    pub fn compute_summary(&self, rank: usize) -> Option<Summary> {
        let samples: Vec<Cycles> = self
            .epochs
            .iter()
            .flat_map(|w| w.iter().filter(|x| x.rank == rank).map(|x| x.compute))
            .collect();
        Summary::of(&samples)
    }

    /// How often the bottleneck changed identity between consecutive
    /// epochs — the "dynamism" the paper says distinguishes SIESTA from
    /// BT-MZ.
    pub fn bottleneck_moves(&self) -> usize {
        let h = self.bottleneck_history();
        h.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl Observer for WindowRecorder {
    fn on_epoch(&mut self, _epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        self.epochs.push(windows.to_vec());
        self.priorities.push(
            (0..windows.len())
                .map(|r| machine.pcb(r).map_or(4, |p| p.hmt_priority.value()))
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute_with, StaticRun};
    use mtb_workloads::metbench::MetBenchConfig;
    use mtb_workloads::siesta::SiestaConfig;

    #[test]
    fn recorder_sees_every_epoch() {
        let cfg = MetBenchConfig {
            iterations: 12,
            scale: 1e-3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let mut rec = WindowRecorder::new();
        let _ = execute_with(StaticRun::new(&progs, cfg.placement()), &mut rec).unwrap();
        assert_eq!(rec.epochs().len(), 12, "one epoch per barrier");
        assert_eq!(rec.priorities().len(), 12);
        assert!(rec.priorities().iter().all(|p| p == &vec![4, 4, 4, 4]));
    }

    #[test]
    fn metbench_bottleneck_is_static_siestas_moves() {
        let met = MetBenchConfig {
            iterations: 15,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec_met = WindowRecorder::new();
        let _ = execute_with(
            StaticRun::new(&met.programs(), met.placement()),
            &mut rec_met,
        )
        .unwrap();

        let sie = SiestaConfig {
            iterations: 15,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec_sie = WindowRecorder::new();
        let _ = execute_with(
            StaticRun::new(&sie.programs(), sie.placement_reference()),
            &mut rec_sie,
        )
        .unwrap();

        // The paper's observation, measured: BT-MZ/MetBench keep one
        // bottleneck; SIESTA's moves between iterations.
        assert!(
            rec_sie.bottleneck_moves() > rec_met.bottleneck_moves(),
            "SIESTA must be more dynamic: {} vs {}",
            rec_sie.bottleneck_moves(),
            rec_met.bottleneck_moves()
        );
    }

    #[test]
    fn compute_summary_reflects_load_shares() {
        let cfg = MetBenchConfig {
            iterations: 10,
            scale: 1e-3,
            ..Default::default()
        };
        let mut rec = WindowRecorder::new();
        let _ = execute_with(StaticRun::new(&cfg.programs(), cfg.placement()), &mut rec).unwrap();
        let light = rec.compute_summary(0).unwrap();
        let heavy = rec.compute_summary(1).unwrap();
        assert!(
            heavy.mean > 3.0 * light.mean,
            "{} vs {}",
            heavy.mean,
            light.mean
        );
        assert!(rec.compute_summary(9).is_none(), "no such rank");
    }

    #[test]
    fn progress_model_accumulates_and_rejects_ragged_tables() {
        let m = ProgressModel::from_expectations(&[vec![10, 30], vec![10, 30]]).unwrap();
        assert_eq!(m.epochs(), 2);
        // Rank 1 retired only a third of its plan while rank 0 is on
        // pace: rank 1 is behind (deficit > 1), rank 0 ahead of the mean.
        let d = m.deficits(1, &[20, 20]);
        assert!(d[1] > 1.0 && d[0] < 1.0, "{d:?}");
        // Past the horizon the last row keeps applying.
        assert_eq!(m.deficits(7, &[20, 20]), d);
        assert!(ProgressModel::from_expectations(&[]).is_none());
        assert!(ProgressModel::from_expectations(&[vec![1], vec![1, 2]]).is_none());
    }

    #[test]
    fn progress_model_deficits_are_clamped_and_idle_ranks_neutral() {
        let m = ProgressModel::from_expectations(&[vec![1_000, 0]]).unwrap();
        let d = m.deficits(0, &[1, 0]);
        assert_eq!(d[1], 1.0, "plan expects rank 1 idle: neutral weight");
        assert!(d[0] <= 4.0, "deficit clamp: {d:?}");
    }

    #[cfg(feature = "verify")]
    #[test]
    fn progress_model_derives_from_metbench_programs() {
        let cfg = MetBenchConfig {
            iterations: 6,
            scale: 1e-3,
            ..Default::default()
        };
        let m = ProgressModel::from_programs(&cfg.programs()).unwrap();
        // One row per barrier plus the tail phase after the last one.
        assert_eq!(m.epochs(), 7);
        // Equal retired counts against unequal expectations: the heavy
        // rank (1) has covered a smaller fraction of its plan, so it
        // carries the larger deficit.
        let d = m.deficits(0, &[100, 100, 100, 100]);
        assert!(d[1] > d[0], "heavy rank with equal retired lags: {d:?}");
    }

    #[test]
    fn barrier_slack_names_the_critical_rank() {
        let windows = vec![
            RankWindow {
                rank: 0,
                compute: 50,
                sync: 150,
            },
            RankWindow {
                rank: 1,
                compute: 200,
                sync: 0,
            },
        ];
        let (critical, slack) = barrier_slack(&windows).unwrap();
        assert_eq!(critical, 1);
        assert_eq!(slack, vec![150, 0]);
        assert!(barrier_slack(&[]).is_none());
    }
}
