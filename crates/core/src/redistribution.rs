//! The data-redistribution baseline (related work, Section III).
//!
//! The classical answer to load imbalance is to move the *data*: METIS-
//! style static partitioning, or dynamic mesh repartitioning (Schloegel,
//! Walshaw). The paper contrasts its approach with these: redistribution
//! can balance better, but must be redone for every input and
//! architecture, requires application cooperation, and pays a data-
//! movement cost. This module implements the baseline so the EXT-4
//! experiment can compare fairly:
//!
//! * [`lpt`] — Longest-Processing-Time greedy partitioning of work items
//!   (zones) into ranks: the standard makespan heuristic, guaranteed
//!   within 4/3 of optimal.
//! * [`moved_items`] / [`redistribution_cycles`] — how much data a new
//!   partition moves relative to the old one, and what that costs through
//!   the communication model.

use mtb_mpisim::comm::LatencyModel;
use mtb_trace::Cycles;

/// Partition `items` (work weights) into `bins` groups minimizing the
/// maximum group sum, with the LPT greedy rule: place each item, largest
/// first, into the currently lightest bin. Returns the item indices per
/// bin.
///
/// ```
/// use mtb_core::redistribution::{lpt, makespan};
/// let zones = [9u64, 7, 6, 5, 4, 3];
/// let part = lpt(&zones, 2);
/// assert_eq!(makespan(&zones, &part), 17); // optimal for this instance
/// ```
///
/// # Panics
/// Panics when `bins` is zero.
pub fn lpt(items: &[u64], bins: usize) -> Vec<Vec<usize>> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(items[i]));

    let mut out = vec![Vec::new(); bins];
    let mut sums = vec![0u64; bins];
    for idx in order {
        let lightest = (0..bins).min_by_key(|&b| sums[b]).expect("bins > 0");
        sums[lightest] += items[idx];
        out[lightest].push(idx);
    }
    out
}

/// The maximum bin sum of a partition (the balance quality; lower is
/// better).
pub fn makespan(items: &[u64], partition: &[Vec<usize>]) -> u64 {
    partition
        .iter()
        .map(|bin| bin.iter().map(|&i| items[i]).sum())
        .max()
        .unwrap_or(0)
}

/// Imbalance of a partition as the paper would measure it: the share of
/// the makespan the *least*-loaded bin would wait, in percent.
pub fn partition_imbalance_pct(items: &[u64], partition: &[Vec<usize>]) -> f64 {
    let max = makespan(items, partition);
    if max == 0 {
        return 0.0;
    }
    let min: u64 = partition
        .iter()
        .map(|bin| bin.iter().map(|&i| items[i]).sum())
        .min()
        .unwrap_or(0);
    100.0 * (max - min) as f64 / max as f64
}

/// Item indices that change owner between two partitions.
pub fn moved_items(old: &[Vec<usize>], new: &[Vec<usize>]) -> Vec<usize> {
    let owner = |part: &[Vec<usize>]| {
        let mut map = std::collections::BTreeMap::new();
        for (bin, items) in part.iter().enumerate() {
            for &i in items {
                map.insert(i, bin);
            }
        }
        map
    };
    let old_owner = owner(old);
    let new_owner = owner(new);
    new_owner
        .iter()
        .filter(|(i, bin)| old_owner.get(i) != Some(bin))
        .map(|(&i, _)| i)
        .collect()
}

/// Cost (cycles) of physically moving the changed items' data across the
/// machine: each moved item of `bytes_per_unit * weight` bytes crosses
/// the chip interconnect once. This is the one-time price redistribution
/// pays that priority balancing does not.
pub fn redistribution_cycles(
    items: &[u64],
    moved: &[usize],
    bytes_per_unit: f64,
    latency: &LatencyModel,
) -> Cycles {
    moved
        .iter()
        .map(|&i| {
            let bytes = (items[i] as f64 * bytes_per_unit) as u64;
            latency.same_chip + (bytes as f64 * latency.per_byte).ceil() as Cycles
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lpt_balances_the_btmz_zones_well() {
        let zones = mtb_workloads::btmz::zone_sizes();
        let contiguous = mtb_workloads::btmz::contiguous_partition(4);
        let balanced = lpt(&zones, 4);
        let before = partition_imbalance_pct(&zones, &contiguous);
        let after = partition_imbalance_pct(&zones, &balanced);
        assert!(
            before > 60.0,
            "contiguous partition is badly imbalanced: {before:.1}"
        );
        assert!(
            after < 10.0,
            "LPT gets within granularity limits: {after:.1}"
        );
        assert!(makespan(&zones, &balanced) < makespan(&zones, &contiguous));
    }

    #[test]
    fn lpt_covers_every_item_exactly_once() {
        let items = [5u64, 3, 8, 1, 9, 2];
        let part = lpt(&items, 3);
        let mut seen: Vec<usize> = part.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn moved_items_detects_ownership_changes() {
        let old = vec![vec![0, 1], vec![2, 3]];
        let new = vec![vec![0, 3], vec![2, 1]];
        let mut moved = moved_items(&old, &new);
        moved.sort_unstable();
        assert_eq!(moved, vec![1, 3]);
        assert!(moved_items(&old, &old).is_empty());
    }

    #[test]
    fn redistribution_cost_scales_with_moved_bytes() {
        let items = [100u64, 200];
        let lat = LatencyModel::default();
        let none = redistribution_cycles(&items, &[], 1.0, &lat);
        let one = redistribution_cycles(&items, &[0], 1.0, &lat);
        let both = redistribution_cycles(&items, &[0, 1], 1.0, &lat);
        assert_eq!(none, 0);
        assert!(one > 0);
        assert!(both > one);
        let heavier = redistribution_cycles(&items, &[1], 1.0, &lat);
        assert!(heavier > one, "moving the bigger item costs more");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = lpt(&[1, 2], 0);
    }

    /// Replays the checked-in `proptest-regressions/redistribution.txt`
    /// counterexample (`items = [7458, 6644, 7078, 4987], bins = 3`):
    /// LPT must place the final item in the lightest bin, keeping the
    /// makespan within Graham's greedy bound and beating the naive
    /// one-bin-per-sorted-item split.
    #[test]
    fn regression_lpt_four_items_three_bins() {
        let items = [7458u64, 6644, 7078, 4987];
        let part = lpt(&items, 3);
        let ms = makespan(&items, &part);
        // 4987 joins 6644 (the lightest bin after the first three
        // placements): bins {7458} {7078} {6644, 4987}.
        assert_eq!(ms, 6644 + 4987);
        let total: u64 = items.iter().sum();
        let mean = total as f64 / 3.0;
        assert!(ms as f64 <= mean + 7458.0 + 1.0, "greedy bound: {ms}");
        let mut seen: Vec<usize> = part.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    proptest! {
        /// LPT's makespan respects the greedy guarantee: no bin exceeds
        /// the mean load plus one item (Graham's argument — when the last
        /// item lands in the lightest bin, that bin was below the mean).
        #[test]
        fn prop_lpt_quality(items in proptest::collection::vec(1u64..10_000, 1..24), bins in 1usize..6) {
            let part = lpt(&items, bins);
            let ms = makespan(&items, &part);
            let total: u64 = items.iter().sum();
            let mean = total as f64 / bins as f64;
            let max_item = *items.iter().max().unwrap() as f64;
            prop_assert!(ms as f64 <= mean + max_item + 1.0,
                "greedy bound violated: {ms} vs mean {mean} + max {max_item}");
        }

        /// Every partition covers all items exactly once.
        #[test]
        fn prop_lpt_is_a_partition(items in proptest::collection::vec(1u64..1000, 0..32), bins in 1usize..5) {
            let part = lpt(&items, bins);
            prop_assert_eq!(part.len(), bins);
            let mut seen: Vec<usize> = part.iter().flatten().copied().collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..items.len()).collect();
            prop_assert_eq!(seen, expect);
        }
    }
}
