//! Priority settings and their application.

use mtb_oskernel::{Machine, PriorityError};
use mtb_smtsim::PrivilegeLevel;

/// How one rank's hardware priority is configured for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrioritySetting {
    /// Leave the kernel default (MEDIUM).
    Default,
    /// Write `/proc/<pid>/hmt_priority` (needs the patched kernel);
    /// valid values 1..=6.
    ProcFs(u8),
    /// Execute the magic or-nop at the given privilege level (works on any
    /// kernel; user space reaches only 2..=4 this way).
    OrNop(u8, PrivilegeLevel),
}

impl PrioritySetting {
    /// Shorthand for the common patched-kernel path.
    pub fn procfs(v: u8) -> PrioritySetting {
        PrioritySetting::ProcFs(v)
    }

    /// The numeric priority this setting requests (4 for `Default`).
    pub fn requested(&self) -> u8 {
        match self {
            PrioritySetting::Default => 4,
            PrioritySetting::ProcFs(v) | PrioritySetting::OrNop(v, _) => *v,
        }
    }
}

/// Apply one setting per rank (pid = rank). Fails fast on the first
/// rejected request — a rejected priority means the experiment
/// configuration is invalid for this kernel.
pub fn apply_priorities(
    machine: &mut Machine,
    settings: &[PrioritySetting],
) -> Result<(), PriorityError> {
    for (rank, s) in settings.iter().enumerate() {
        match *s {
            PrioritySetting::Default => {}
            PrioritySetting::ProcFs(v) => machine.set_priority_procfs(rank, v)?,
            PrioritySetting::OrNop(v, privilege) => {
                machine.set_priority_ornop(rank, v, privilege)?
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtb_oskernel::{CtxAddr, KernelConfig};
    use mtb_smtsim::chip::build_cores;
    use mtb_smtsim::HwPriority;

    fn machine(kernel: KernelConfig) -> Machine {
        let mut m = Machine::new(build_cores(2, false), kernel);
        for r in 0..4 {
            m.spawn(r, format!("P{}", r + 1), CtxAddr::from_cpu(r))
                .unwrap();
        }
        m
    }

    #[test]
    fn settings_apply_in_rank_order() {
        let mut m = machine(KernelConfig::patched());
        apply_priorities(
            &mut m,
            &[
                PrioritySetting::Default,
                PrioritySetting::ProcFs(6),
                PrioritySetting::OrNop(3, PrivilegeLevel::User),
                PrioritySetting::ProcFs(2),
            ],
        )
        .unwrap();
        assert_eq!(m.pcb(0).unwrap().hmt_priority, HwPriority::MEDIUM);
        assert_eq!(m.pcb(1).unwrap().hmt_priority, HwPriority::HIGH);
        assert_eq!(m.pcb(2).unwrap().hmt_priority, HwPriority::MEDIUM_LOW);
        assert_eq!(m.pcb(3).unwrap().hmt_priority, HwPriority::LOW);
    }

    #[test]
    fn procfs_on_vanilla_kernel_is_rejected() {
        let mut m = machine(KernelConfig::vanilla());
        let err = apply_priorities(&mut m, &[PrioritySetting::ProcFs(5)]);
        assert!(err.is_err());
    }

    #[test]
    fn requested_reports_the_value() {
        assert_eq!(PrioritySetting::Default.requested(), 4);
        assert_eq!(PrioritySetting::procfs(6).requested(), 6);
        assert_eq!(
            PrioritySetting::OrNop(2, PrivilegeLevel::User).requested(),
            2
        );
    }
}
