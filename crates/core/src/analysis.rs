//! Run characterization in the paper's table format.
//!
//! Tables IV-VI report, per case: for each process its core, priority,
//! Comp % and Sync %, plus the run's imbalance percentage and total
//! execution time. [`characterize`] extracts those rows from a
//! [`RunResult`] and [`render_case_table`] formats a whole table.

use crate::paper_cases::Case;
use mtb_mpisim::engine::RunResult;
use mtb_trace::cycles_to_seconds;
use mtb_trace::table::{secs, Table};

/// One process row of a characterization table.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseRow {
    /// Process label ("P1"...).
    pub proc: String,
    /// Core the process ran on (1-based, like the paper).
    pub core: usize,
    /// Configured priority.
    pub priority: u8,
    /// Percentage of lifetime spent computing.
    pub comp_pct: f64,
    /// Percentage of lifetime spent waiting.
    pub sync_pct: f64,
}

/// Extract per-process rows for a (case, result) pair.
pub fn characterize(case: &Case, result: &RunResult) -> Vec<CaseRow> {
    result
        .metrics
        .procs
        .iter()
        .map(|p| CaseRow {
            proc: p.label.clone(),
            core: case.placement[p.pid].core + 1,
            priority: case.priorities.get(p.pid).map_or(4, |s| s.requested()),
            comp_pct: p.comp_pct,
            sync_pct: p.sync_pct,
        })
        .collect()
}

/// Render a full paper-style table for a set of (case, result) pairs.
pub fn render_case_table(title: &str, runs: &[(Case, RunResult)]) -> String {
    let mut t = Table::new(&[
        "Test",
        "Proc",
        "Core",
        "P",
        "Comp %",
        "Sync %",
        "Imb %",
        "Exec. Time",
    ])
    .with_title(title.to_string());
    for (i, (case, result)) in runs.iter().enumerate() {
        if i > 0 {
            t.separator();
        }
        let rows = characterize(case, result);
        for (j, r) in rows.iter().enumerate() {
            let first = j == 0;
            t.row_owned(vec![
                if first {
                    case.name.to_string()
                } else {
                    String::new()
                },
                r.proc.clone(),
                r.core.to_string(),
                r.priority.to_string(),
                format!("{:.2}", r.comp_pct),
                format!("{:.2}", r.sync_pct),
                if first {
                    format!("{:.2}", result.metrics.imbalance_pct)
                } else {
                    String::new()
                },
                if first {
                    secs(cycles_to_seconds(result.total_cycles))
                } else {
                    String::new()
                },
            ]);
        }
    }
    t.render()
}

/// Improvement (%) of each case over the named reference case.
pub fn improvements_over(reference: &str, runs: &[(Case, RunResult)]) -> Vec<(String, f64)> {
    let Some(ref_run) = runs.iter().find(|(c, _)| c.name == reference) else {
        return Vec::new();
    };
    let ref_cycles = ref_run.1.total_cycles as f64;
    runs.iter()
        .map(|(c, r)| {
            (
                c.name.to_string(),
                100.0 * (ref_cycles - r.total_cycles as f64) / ref_cycles,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute, StaticRun};
    use crate::paper_cases::metbench_cases;
    use mtb_workloads::metbench::MetBenchConfig;

    fn small_run() -> (Case, RunResult) {
        let cfg = MetBenchConfig::tiny();
        let progs = cfg.programs();
        let case = metbench_cases().remove(0);
        let r = execute(
            StaticRun::new(&progs, case.placement.clone()).with_priorities(case.priorities.clone()),
        )
        .unwrap();
        (case, r)
    }

    #[test]
    fn rows_carry_placement_and_priorities() {
        let (case, result) = small_run();
        let rows = characterize(&case, &result);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].proc, "P1");
        assert_eq!(rows[0].core, 1);
        assert_eq!(rows[2].core, 2, "P3 on core 2");
        assert!(rows.iter().all(|r| r.priority == 4));
        // Light ranks wait more than heavy ranks in case A.
        assert!(rows[0].sync_pct > rows[1].sync_pct);
    }

    #[test]
    fn table_renders_all_cases() {
        let (case, result) = small_run();
        let s = render_case_table("TABLE IV", &[(case, result)]);
        assert!(s.starts_with("TABLE IV"));
        assert!(s.contains("P1"));
        assert!(s.contains("Exec. Time"));
    }

    #[test]
    fn improvements_are_relative_to_reference() {
        let (case, result) = small_run();
        let mut r2 = result.clone();
        r2.total_cycles = result.total_cycles / 2;
        let mut case2 = case.clone();
        case2.name = "C";
        let imps = improvements_over("A", &[(case, result), (case2, r2)]);
        assert_eq!(imps[0].0, "A");
        assert!((imps[0].1).abs() < 1e-9);
        assert!((imps[1].1 - 50.0).abs() < 1e-9);
    }
}
