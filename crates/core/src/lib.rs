//! # mtb-core — smart allocation of MT processor resources
//!
//! The paper's contribution: reduce the imbalance of an MPI application —
//! transparently to the user — by steering the SMT hardware thread
//! priorities of the contexts its ranks run on, so the bottleneck rank
//! receives more decode bandwidth and the ranks with slack donate theirs.
//!
//! * [`policy`] — priority settings and how they are applied through the
//!   OS interfaces (`/proc/<pid>/hmt_priority` or or-nop).
//! * [`balance`] — the runner: execute a set of rank programs under a
//!   placement + priority configuration (static balancing, as in the
//!   paper's experiments) or under a feedback policy (dynamic).
//! * [`paper_cases`] — the exact case configurations of Tables IV-VI
//!   (mappings and priorities the authors chose by hand).
//! * [`dynamic`] — the paper's proposed future work (Section VIII):
//!   a policy that observes per-iteration compute/wait times and adjusts
//!   priorities automatically, with bounded differences and hysteresis so
//!   it cannot run into the case-D inversion; and the v2 two-level
//!   controller that equalizes progress against the static plan's
//!   expectation and remaps ranks across cores when intra-core tuning
//!   saturates.
//! * [`predictor`] — a what-if model over the decode-share mathematics:
//!   predicts per-rank speed at candidate priority pairs and picks the
//!   pair minimizing the core's makespan.
//! * [`mapper`] — core-pairing heuristics (pair the heaviest rank with the
//!   lightest, Section VII-B's mapping argument).
//! * [`observe`] — epoch-window recording for offline analysis of
//!   dynamic behaviour.
//! * [`remap`] — online rank remapping: the Section VII-B pairing
//!   argument applied at run time via process migration, composable with
//!   the dynamic balancer.
//! * [`redistribution`] — the related-work baseline (Section III):
//!   METIS/LPT-style data repartitioning, with its movement cost, so the
//!   two approaches can be compared head-to-head (EXT-4).
//! * [`analysis`] — turns a run into the paper's characterization rows
//!   (Comp %, Sync %, Imb %, execution time).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod balance;
pub mod dynamic;
pub mod mapper;
pub mod observe;
pub mod paper_cases;
pub mod policy;
pub mod predictor;
pub mod redistribution;
pub mod remap;

pub use analysis::{characterize, CaseRow};
pub use balance::execute_with;
pub use balance::{
    execute, execute_chunked, prepare, BalanceError, CheckpointSink, NoCheckpoint, StaticRun,
};
pub use dynamic::{ControllerConfig, DynamicBalancer, DynamicConfig, TwoLevelController};
pub use mapper::pair_by_load;
pub use observe::ProgressModel;
pub use policy::PrioritySetting;
pub use predictor::{best_priority_pair, predict_pair};
