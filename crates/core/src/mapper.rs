//! Core-pairing heuristics.
//!
//! Section VII-B: "we ran process P1 and P4 on the same core and assigned
//! more hardware resources to the latter [...] We chose P1 because it is
//! the process with the shortest computation phase." Pairing the heaviest
//! rank with the lightest maximizes the bandwidth the bottleneck can be
//! given without making its core-mate the new bottleneck, and maximizes
//! the idle-donation the bottleneck receives while its mate waits.

use mtb_oskernel::CtxAddr;

/// Pair ranks by load: sort by estimated work, then repeatedly co-locate
/// the heaviest remaining rank with the lightest remaining one. Returns
/// `placement[rank] = context` over `n/2` cores (2 contexts each).
///
/// ```
/// use mtb_core::mapper::pair_by_load;
/// // BT-MZ's Table V loads: the paper pairs P1 with P4 and P2 with P3.
/// let placement = pair_by_load(&[176, 289, 665, 1000], 2);
/// assert_eq!(placement[0].core, placement[3].core);
/// assert_eq!(placement[1].core, placement[2].core);
/// ```
///
/// # Panics
/// Panics if the rank count is odd or exceeds `2 * cores`.
pub fn pair_by_load(work: &[u64], cores: usize) -> Vec<CtxAddr> {
    let n = work.len();
    assert!(n.is_multiple_of(2), "need an even rank count to pair");
    assert!(n <= cores * 2, "not enough hardware contexts");

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&r| work[r]);

    let mut placement = vec![CtxAddr::from_cpu(0); n];
    // lightest..heaviest; pair ends of the sorted order.
    for core in 0..n / 2 {
        let light = order[core];
        let heavy = order[n - 1 - core];
        placement[heavy] = CtxAddr::from_cpu(core * 2);
        placement[light] = CtxAddr::from_cpu(core * 2 + 1);
    }
    placement
}

/// Block placement for a cluster: consecutive ranks fill each node before
/// the next (contiguous ring neighbours stay on-node; only the block
/// boundaries cross the network).
pub fn block_placement(n_ranks: usize) -> Vec<CtxAddr> {
    (0..n_ranks).map(CtxAddr::from_cpu).collect()
}

/// Striped (round-robin) placement across `nodes` nodes of
/// `cores_per_node` cores: rank r goes to node `r % nodes` — the
/// topology-oblivious scheduler the paper's Section II-B warns about,
/// which puts every ring neighbour on a different node.
pub fn striped_placement(n_ranks: usize, nodes: usize, cores_per_node: usize) -> Vec<CtxAddr> {
    let ctx_per_node = cores_per_node * 2;
    assert!(n_ranks <= nodes * ctx_per_node, "not enough contexts");
    let mut next_slot = vec![0usize; nodes];
    (0..n_ranks)
        .map(|r| {
            let node = r % nodes;
            let slot = next_slot[node];
            next_slot[node] += 1;
            assert!(slot < ctx_per_node, "node {node} overfull");
            CtxAddr::from_cpu(node * ctx_per_node + slot)
        })
        .collect()
}

/// The maximum per-core work sum of a placement — a lower-is-better
/// quality measure for pairings (ignores SMT interaction, counts raw
/// work).
pub fn max_core_load(work: &[u64], placement: &[CtxAddr]) -> u64 {
    let cores = placement.iter().map(|c| c.core).max().map_or(0, |m| m + 1);
    let mut sums = vec![0u64; cores];
    for (rank, ctx) in placement.iter().enumerate() {
        sums[ctx.core] += work[rank];
    }
    sums.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn btmz_loads_pair_like_the_paper() {
        // Table V work shape: P1 lightest, P4 heaviest -> P1+P4 paired,
        // P2+P3 paired. Exactly the paper's chosen mapping.
        let work = [176, 289, 665, 1000];
        let placement = pair_by_load(&work, 2);
        assert_eq!(placement[0].core, placement[3].core, "P1 with P4");
        assert_eq!(placement[1].core, placement[2].core, "P2 with P3");
    }

    #[test]
    fn heavy_rank_gets_the_even_context() {
        let work = [10, 1000];
        let placement = pair_by_load(&work, 1);
        assert_eq!(placement[1].cpu(), 0, "heavy on thread A");
        assert_eq!(placement[0].cpu(), 1);
    }

    #[test]
    fn max_core_load_measures_quality() {
        let work = [176, 289, 665, 1000];
        let paper = pair_by_load(&work, 2);
        let naive: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        assert!(
            max_core_load(&work, &paper) < max_core_load(&work, &naive),
            "pairing heavy+light beats adjacent pairing"
        );
    }

    #[test]
    #[should_panic(expected = "even rank count")]
    fn odd_rank_count_panics() {
        let _ = pair_by_load(&[1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "not enough hardware contexts")]
    fn too_many_ranks_panics() {
        let _ = pair_by_load(&[1, 2, 3, 4, 5, 6], 2);
    }

    #[test]
    fn striped_placement_separates_neighbours() {
        use mtb_oskernel::Topology;
        let topo = Topology::cluster(2);
        let striped = striped_placement(8, 2, 2);
        let block = block_placement(8);
        // Ring neighbours (r, r+1): count cross-node edges.
        let cross = |pl: &[CtxAddr]| {
            (0..8)
                .filter(|&r| !topo.same_node(pl[r], pl[(r + 1) % 8]))
                .count()
        };
        assert_eq!(cross(&block), 2, "block keeps all but the seam edges local");
        assert_eq!(cross(&striped), 8, "striping sends every edge across");
    }

    proptest! {
        /// The pairing never splits the heaviest and lightest ranks and
        /// every context is used at most once.
        #[test]
        fn prop_pairing_is_a_bijection(work in proptest::collection::vec(1u64..10_000, 2..=8)) {
            prop_assume!(work.len() % 2 == 0);
            let placement = pair_by_load(&work, work.len() / 2);
            let mut seen = std::collections::HashSet::new();
            for c in &placement {
                prop_assert!(seen.insert(c.cpu()), "context reused");
            }
        }

        /// Heaviest-with-lightest pairing never has a worse max core load
        /// than pairing by rank adjacency.
        #[test]
        fn prop_pairing_quality(work in proptest::collection::vec(1u64..10_000, 2..=8)) {
            prop_assume!(work.len() % 2 == 0);
            let cores = work.len() / 2;
            let paired = pair_by_load(&work, cores);
            let naive: Vec<CtxAddr> = (0..work.len()).map(CtxAddr::from_cpu).collect();
            prop_assert!(max_core_load(&work, &paired) <= max_core_load(&work, &naive));
        }
    }
}
