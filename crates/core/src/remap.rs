//! Online rank remapping.
//!
//! Section VII-B's mapping argument (pair the heaviest rank with the
//! lightest), applied *at run time*: an observer that watches per-epoch
//! compute times and, once the picture stabilizes, migrates ranks between
//! SMT contexts so that heavy and light ranks share cores. Combines with
//! the [`DynamicBalancer`](crate::dynamic::DynamicBalancer) through
//! [`Composite`] — remapping fixes *which* ranks share a core, priorities
//! fix *how much* of it each one gets.

use crate::mapper::pair_by_load;
use mtb_mpisim::engine::{Observer, RankWindow};
use mtb_oskernel::{CtxAddr, Machine};

/// Realize a desired placement with swaps/migrations. Iterates: find a
/// rank sitting on the wrong context and swap it with the rank (if any)
/// occupying its desired seat, or migrate if the seat is free. Returns
/// the number of migrations/swaps performed. Used by both the one-shot
/// [`AdaptiveMapper`] and the two-level controller's level-1 remap.
pub fn realize_placement(machine: &mut Machine, desired: &[CtxAddr]) -> usize {
    let n = desired.len();
    let mut moves = 0;
    for _ in 0..2 * n {
        let Some(rank) = (0..n).find(|&r| machine.pcb(r).map(|p| p.affinity) != Some(desired[r]))
        else {
            break;
        };
        let target = desired[rank];
        let occupant =
            (0..n).find(|&o| o != rank && machine.pcb(o).map(|p| p.affinity) == Some(target));
        let ok = match occupant {
            Some(o) => machine.swap(rank, o).is_ok(),
            None => machine.migrate(rank, target).is_ok(),
        };
        if !ok {
            break;
        }
        moves += 1;
    }
    moves
}

/// Configuration of the adaptive mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemapConfig {
    /// Epochs of observation before the first (and only) remap decision.
    pub settle: usize,
    /// Minimum heavy/light imbalance (max/min smoothed compute) before a
    /// remap is considered worthwhile.
    pub min_ratio: f64,
    /// EWMA smoothing of the observations.
    pub ewma: f64,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig {
            settle: 3,
            min_ratio: 1.15,
            ewma: 0.5,
        }
    }
}

/// The observer. It remaps at most once per run: repeated migration would
/// thrash caches for little benefit, and one good pairing is what the
/// paper's manual cases establish.
#[derive(Debug)]
pub struct AdaptiveMapper {
    cfg: RemapConfig,
    smooth: Vec<f64>,
    epochs_seen: usize,
    remapped: bool,
    /// Number of migrations performed (diagnostics).
    migrations: usize,
}

impl AdaptiveMapper {
    /// A mapper for `n_ranks` ranks.
    pub fn new(n_ranks: usize, cfg: RemapConfig) -> AdaptiveMapper {
        AdaptiveMapper {
            cfg,
            smooth: vec![0.0; n_ranks],
            epochs_seen: 0,
            remapped: false,
            migrations: 0,
        }
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Has the one-shot remap happened?
    pub fn remapped(&self) -> bool {
        self.remapped
    }
}

impl Observer for AdaptiveMapper {
    fn on_epoch(&mut self, _epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        for w in windows {
            let x = w.compute as f64;
            let s = &mut self.smooth[w.rank];
            *s = if *s == 0.0 {
                x
            } else {
                self.cfg.ewma * *s + (1.0 - self.cfg.ewma) * x
            };
        }
        self.epochs_seen += 1;
        if self.remapped || self.epochs_seen < self.cfg.settle {
            return;
        }
        let max = self.smooth.iter().cloned().fold(0.0, f64::max);
        let min = self.smooth.iter().cloned().fold(f64::INFINITY, f64::min);
        if min <= 0.0 || max / min < self.cfg.min_ratio {
            return;
        }

        // Desired pairing from observed loads.
        let loads: Vec<u64> = self.smooth.iter().map(|&s| s as u64).collect();
        let n = loads.len();
        if !n.is_multiple_of(2) {
            return; // odd rank counts are not pairable
        }
        let cores = machine.num_contexts() / 2;
        if n > cores * 2 {
            return;
        }
        let desired = pair_by_load(&loads, cores);
        self.remapped = true;
        self.migrations += realize_placement(machine, &desired);
    }
}

/// Run several observers in sequence on every epoch (e.g. the adaptive
/// mapper first, then the priority balancer).
pub struct Composite<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> Composite<'a> {
    /// Compose observers; they fire in the given order.
    pub fn new(observers: Vec<&'a mut dyn Observer>) -> Composite<'a> {
        Composite { observers }
    }
}

impl Observer for Composite<'_> {
    fn on_epoch(&mut self, epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        for o in &mut self.observers {
            o.on_epoch(epoch, windows, machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute, execute_with, StaticRun};
    use crate::dynamic::DynamicBalancer;
    use mtb_oskernel::CtxAddr;

    /// Two heavy ranks start on the same core (the worst pairing); the
    /// adaptive mapper must discover it and separate them — the paper's
    /// heavy-with-light pairing. (Pairing alone barely changes MetBench's
    /// runtime at equal priorities; it *enables* the priority gains, which
    /// the composite test below demonstrates.)
    #[test]
    fn adaptive_mapper_separates_the_heavy_pair() {
        let progs = mtb_workloads::metbench::MetBenchConfig {
            iterations: 30,
            scale: 3e-3,
            heavy_ranks: vec![2, 3], // heavies adjacent: identity pairing is bad
            ..Default::default()
        }
        .programs();
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();

        // Drive the run and capture the final placement through a probe
        // observer layered after the mapper.
        struct Probe(Vec<CtxAddr>);
        impl Observer for Probe {
            fn on_epoch(&mut self, _: usize, w: &[RankWindow], m: &mut Machine) {
                self.0 = (0..w.len()).map(|r| m.pcb(r).unwrap().affinity).collect();
            }
        }
        let mut mapper = AdaptiveMapper::new(4, RemapConfig::default());
        let mut probe = Probe(Vec::new());
        let mut combo = Composite::new(vec![&mut mapper, &mut probe]);
        let _ = execute_with(StaticRun::new(&progs, placement), &mut combo).unwrap();

        assert!(mapper.remapped());
        assert!(mapper.migrations() > 0);
        let final_placement = probe.0;
        assert_ne!(
            final_placement[2].core, final_placement[3].core,
            "the heavy ranks must end up on different cores: {final_placement:?}"
        );
    }

    #[test]
    fn mapper_leaves_balanced_runs_alone() {
        let progs = mtb_workloads::synthetic::SyntheticConfig {
            skew: 1.0,
            base_work: 10_000_000,
            iterations: 8,
            ..Default::default()
        }
        .programs();
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let mut mapper = AdaptiveMapper::new(4, RemapConfig::default());
        let _ = execute_with(StaticRun::new(&progs, placement), &mut mapper).unwrap();
        assert_eq!(mapper.migrations(), 0, "no reason to touch a balanced run");
    }

    #[test]
    fn composite_runs_mapper_then_balancer() {
        let progs = mtb_workloads::metbench::MetBenchConfig {
            iterations: 30,
            scale: 3e-3,
            heavy_ranks: vec![2, 3],
            ..Default::default()
        }
        .programs();
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();

        let reference = execute(StaticRun::new(&progs, placement.clone())).unwrap();

        let mut mapper = AdaptiveMapper::new(4, RemapConfig::default());
        let mut balancer = DynamicBalancer::with_defaults(&placement);
        let mut combo = Composite::new(vec![&mut mapper, &mut balancer]);
        let combined = execute_with(StaticRun::new(&progs, placement), &mut combo).unwrap();

        assert!(
            (combined.total_cycles as f64) < reference.total_cycles as f64 * 0.92,
            "mapping + priorities must beat the reference clearly: {} vs {}",
            combined.total_cycles,
            reference.total_cycles
        );
    }
}
