//! What-if prediction over the decode-share model.
//!
//! Choosing priorities by trial and error is exactly what the paper's
//! authors had to do (four cases per application). This module predicts
//! the outcome instead: given the two co-running workload profiles and
//! their work amounts, it evaluates every candidate priority pair through
//! the same throughput equations the mesoscale core uses and returns the
//! pair minimizing the core's makespan. It is the model-driven replacement
//! for the paper's manual case exploration.

use mtb_smtsim::inst::StreamSpec;
use mtb_smtsim::model::{CoreModel, ThreadId, Workload, WorkloadProfile};
use mtb_smtsim::perfmodel::{MesoConfig, MesoCore};
use mtb_smtsim::HwPriority;

/// Predicted steady-state throughputs (instructions/cycle) of two
/// co-running workloads at the given priorities.
pub fn predict_pair(a: &WorkloadProfile, b: &WorkloadProfile, pa: u8, pb: u8) -> (f64, f64) {
    let mut core = MesoCore::new(MesoConfig::default());
    core.assign(
        ThreadId::A,
        Workload::with_profile("a", StreamSpec::balanced(0), *a),
    );
    core.assign(
        ThreadId::B,
        Workload::with_profile("b", StreamSpec::balanced(1), *b),
    );
    core.set_priority(ThreadId::A, HwPriority::new(pa).expect("priority in range"));
    core.set_priority(ThreadId::B, HwPriority::new(pb).expect("priority in range"));
    let r = core.throughputs();
    (r[0], r[1])
}

/// The profile of the MPI busy-wait loop a finished rank executes (matches
/// `mtb_oskernel::machine::spin_workload`): the early finisher does *not*
/// free the core — it spins at its configured priority, which is exactly
/// why Section VI recommends lowering the priority of polling threads.
fn spin_profile() -> WorkloadProfile {
    WorkloadProfile::new(2.0, 0.1, 0.0)
}

/// Predicted makespan (cycles) of a core running workload `a` for
/// `work_a` instructions and `b` for `work_b`, at the given priorities.
///
/// Two phases: both threads compute at the paired rates until the shorter
/// one finishes; the survivor then runs against the finisher's *spin
/// loop*, still throttled by the priority pair (an MPICH blocking call
/// busy-waits; it does not idle the context).
pub fn predict_makespan(
    a: &WorkloadProfile,
    b: &WorkloadProfile,
    work_a: u64,
    work_b: u64,
    pa: u8,
    pb: u8,
) -> f64 {
    let (ra, rb) = predict_pair(a, b, pa, pb);
    if ra <= 0.0 || rb <= 0.0 {
        return f64::INFINITY;
    }
    let ta = work_a as f64 / ra;
    let tb = work_b as f64 / rb;
    let (first, survivor_rate, survivor_left) = if ta <= tb {
        let (_, r_surv) = predict_pair(&spin_profile(), b, pa, pb);
        (ta, r_surv, work_b as f64 - tb.min(ta) * rb)
    } else {
        let (r_surv, _) = predict_pair(a, &spin_profile(), pa, pb);
        (tb, r_surv, work_a as f64 - ta.min(tb) * ra)
    };
    if survivor_rate <= 0.0 {
        return f64::INFINITY;
    }
    first + (survivor_left.max(0.0) / survivor_rate)
}

/// Search OS-settable priority pairs (1..=6 each) for the one minimizing
/// the predicted makespan. Returns `(pa, pb, predicted_cycles)`.
///
/// `max_diff` bounds the explored priority difference (the paper's case D
/// shows why unbounded differences are dangerous when the model is
/// imperfect).
pub fn best_priority_pair(
    a: &WorkloadProfile,
    b: &WorkloadProfile,
    work_a: u64,
    work_b: u64,
    max_diff: u8,
) -> (u8, u8, f64) {
    let mut best = (4u8, 4u8, f64::INFINITY);
    for pa in 1..=6u8 {
        for pb in 1..=6u8 {
            if pa.abs_diff(pb) > max_diff {
                continue;
            }
            let t = predict_makespan(a, b, work_a, work_b, pa, pb);
            if t < best.2 {
                best = (pa, pb, t);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(ipc: f64) -> WorkloadProfile {
        WorkloadProfile::new(ipc, 0.05, 0.02)
    }

    #[test]
    fn prediction_matches_meso_core_by_construction() {
        let (ra, rb) = predict_pair(&dense(2.6), &dense(2.6), 4, 4);
        assert!((ra - rb).abs() < 1e-9);
        assert!(ra <= 2.5 + 1e-9, "equal share supply bound");
    }

    #[test]
    fn boosting_helps_the_boosted_thread() {
        let (r_hi, r_lo) = predict_pair(&dense(2.6), &dense(2.6), 6, 4);
        let (r_eq, _) = predict_pair(&dense(2.6), &dense(2.6), 4, 4);
        assert!(r_hi > r_eq);
        assert!(r_lo < r_eq);
    }

    #[test]
    fn makespan_accounts_for_the_solo_tail() {
        // Balanced work at equal priorities: ends together, no tail.
        let t_eq = predict_makespan(&dense(2.6), &dense(2.6), 1_000_000, 1_000_000, 4, 4);
        // Heavily skewed work: the light thread finishes early and the
        // heavy one continues at solo speed.
        let t_skew = predict_makespan(&dense(2.6), &dense(2.6), 4_000_000, 1_000_000, 4, 4);
        assert!(t_skew > t_eq);
        assert!(
            t_skew < 4.0 * t_eq,
            "the tail against a spin loop still beats 4 sequential phases"
        );
    }

    #[test]
    fn best_pair_for_imbalanced_work_boosts_the_heavy_thread() {
        let (pa, pb, t) = best_priority_pair(&dense(2.6), &dense(2.6), 4_000_000, 1_000_000, 2);
        assert!(
            pa > pb,
            "thread A has 4x the work, it must be boosted: ({pa},{pb})"
        );
        assert!(t.is_finite());
        // And the chosen pair beats the default.
        let t_default = predict_makespan(&dense(2.6), &dense(2.6), 4_000_000, 1_000_000, 4, 4);
        assert!(t <= t_default);
    }

    #[test]
    fn best_pair_for_balanced_work_is_symmetric() {
        let (pa, pb, _) = best_priority_pair(&dense(2.6), &dense(2.6), 1_000_000, 1_000_000, 2);
        assert_eq!(pa, pb, "no reason to skew a balanced pair");
    }

    #[test]
    fn memory_bound_pairs_gain_little_from_priorities() {
        // The SIESTA story: a 1.6-IPC thread is not decode-limited at
        // share 1/2, so boosting the partner barely hurts it.
        let mem = WorkloadProfile::new(1.6, 0.2, 0.5);
        let (_, r_lo_eq) = predict_pair(&mem, &mem, 4, 4);
        let (_, r_lo_boosted) = predict_pair(&mem, &mem, 5, 4);
        let hit = 1.0 - r_lo_boosted / r_lo_eq;
        assert!(
            hit < 0.05,
            "diff-1 penalty should be tiny for memory-bound code: {hit}"
        );
    }

    #[test]
    fn diff_cap_is_respected() {
        let (pa, pb, _) = best_priority_pair(&dense(2.6), &dense(2.6), 100_000_000, 1_000_000, 1);
        assert!(pa.abs_diff(pb) <= 1);
    }
}
