//! The paper's hand-chosen balancing configurations, verbatim.
//!
//! Tables IV, V and VI each compare a reference case A (default priorities,
//! rank-to-cpu identity mapping) against manual placements and priorities
//! B-D. These constants encode exactly the configurations printed in the
//! tables, so the benchmark harness can regenerate them.

use crate::policy::PrioritySetting;
use mtb_oskernel::CtxAddr;
use mtb_smtsim::PrivilegeLevel;

/// One named configuration of a table.
#[derive(Debug, Clone)]
pub struct Case {
    /// The paper's label ("ST", "A", "B", "C", "D").
    pub name: &'static str,
    /// Rank -> context mapping.
    pub placement: Vec<CtxAddr>,
    /// Per-rank priorities.
    pub priorities: Vec<PrioritySetting>,
}

fn identity(n: usize) -> Vec<CtxAddr> {
    (0..n).map(CtxAddr::from_cpu).collect()
}

fn procfs(values: &[u8]) -> Vec<PrioritySetting> {
    values.iter().map(|&v| PrioritySetting::ProcFs(v)).collect()
}

/// ST mode: one rank per core at hypervisor priority 7 (the sibling
/// context idles at VERY LOW, so the rank effectively owns the core).
fn st_priorities(n: usize) -> Vec<PrioritySetting> {
    (0..n)
        .map(|_| PrioritySetting::OrNop(7, PrivilegeLevel::Hypervisor))
        .collect()
}

/// Table IV — MetBench cases. P1/P3 carry the light load, P2/P4 the heavy
/// one; placement is the identity (P1+P2 core 1, P3+P4 core 2) in every
/// case, only priorities change.
pub fn metbench_cases() -> Vec<Case> {
    vec![
        Case {
            name: "A",
            placement: identity(4),
            priorities: procfs(&[4, 4, 4, 4]),
        },
        Case {
            name: "B",
            placement: identity(4),
            priorities: procfs(&[5, 6, 5, 6]),
        },
        Case {
            name: "C",
            placement: identity(4),
            priorities: procfs(&[4, 6, 4, 6]),
        },
        Case {
            name: "D",
            placement: identity(4),
            priorities: procfs(&[3, 6, 3, 6]),
        },
    ]
}

/// The paper's BT-MZ B-D placement: P1+P4 on core 1, P2+P3 on core 2.
pub fn btmz_paired_placement() -> Vec<CtxAddr> {
    vec![
        CtxAddr::from_cpu(0),
        CtxAddr::from_cpu(2),
        CtxAddr::from_cpu(3),
        CtxAddr::from_cpu(1),
    ]
}

/// Table V — BT-MZ cases (4 ranks; the ST row uses the 2-rank partition,
/// see [`btmz_st_case`]).
pub fn btmz_cases() -> Vec<Case> {
    vec![
        Case {
            name: "A",
            placement: identity(4),
            priorities: procfs(&[4, 4, 4, 4]),
        },
        Case {
            name: "B",
            placement: btmz_paired_placement(),
            priorities: procfs(&[3, 3, 6, 6]),
        },
        Case {
            name: "C",
            placement: btmz_paired_placement(),
            priorities: procfs(&[4, 4, 6, 6]),
        },
        Case {
            name: "D",
            placement: btmz_paired_placement(),
            priorities: procfs(&[4, 4, 5, 6]),
        },
    ]
}

/// Table V's ST row: 2 ranks, one per core.
pub fn btmz_st_case() -> Case {
    Case {
        name: "ST",
        placement: vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(2)],
        priorities: st_priorities(2),
    }
}

/// The paper's SIESTA B-D placement: P2+P3 on core 1, P1+P4 on core 2.
pub fn siesta_paired_placement() -> Vec<CtxAddr> {
    vec![
        CtxAddr::from_cpu(2),
        CtxAddr::from_cpu(0),
        CtxAddr::from_cpu(1),
        CtxAddr::from_cpu(3),
    ]
}

/// Table VI — SIESTA cases.
pub fn siesta_cases() -> Vec<Case> {
    vec![
        Case {
            name: "A",
            placement: identity(4),
            priorities: procfs(&[4, 4, 4, 4]),
        },
        Case {
            name: "B",
            placement: siesta_paired_placement(),
            priorities: procfs(&[4, 4, 5, 5]),
        },
        Case {
            name: "C",
            placement: siesta_paired_placement(),
            priorities: procfs(&[4, 4, 4, 5]),
        },
        Case {
            name: "D",
            placement: siesta_paired_placement(),
            priorities: procfs(&[4, 4, 4, 6]),
        },
    ]
}

/// Table VI's ST row.
pub fn siesta_st_case() -> Case {
    Case {
        name: "ST",
        placement: vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(2)],
        priorities: st_priorities(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metbench_cases_match_table4() {
        let cases = metbench_cases();
        assert_eq!(cases.len(), 4);
        let vals: Vec<Vec<u8>> = cases
            .iter()
            .map(|c| c.priorities.iter().map(|p| p.requested()).collect())
            .collect();
        assert_eq!(vals[0], vec![4, 4, 4, 4]);
        assert_eq!(vals[1], vec![5, 6, 5, 6]);
        assert_eq!(vals[2], vec![4, 6, 4, 6]);
        assert_eq!(vals[3], vec![3, 6, 3, 6]);
    }

    #[test]
    fn btmz_cases_match_table5() {
        let cases = btmz_cases();
        let d = &cases[3];
        let vals: Vec<u8> = d.priorities.iter().map(|p| p.requested()).collect();
        assert_eq!(vals, vec![4, 4, 5, 6]);
        // B-D pair P1 with P4.
        for c in &cases[1..] {
            assert_eq!(c.placement[0].core, c.placement[3].core);
            assert_eq!(c.placement[1].core, c.placement[2].core);
        }
        // A is the identity mapping.
        assert_eq!(cases[0].placement[0].core, cases[0].placement[1].core);
    }

    #[test]
    fn siesta_cases_match_table6() {
        let cases = siesta_cases();
        let vals: Vec<Vec<u8>> = cases
            .iter()
            .map(|c| c.priorities.iter().map(|p| p.requested()).collect())
            .collect();
        assert_eq!(vals[1], vec![4, 4, 5, 5]);
        assert_eq!(vals[2], vec![4, 4, 4, 5]);
        assert_eq!(vals[3], vec![4, 4, 4, 6]);
        for c in &cases[1..] {
            assert_eq!(c.placement[1].core, c.placement[2].core, "P2+P3 paired");
            assert_eq!(c.placement[0].core, c.placement[3].core, "P1+P4 paired");
        }
    }

    #[test]
    fn st_cases_use_separate_cores_at_priority7() {
        for c in [btmz_st_case(), siesta_st_case()] {
            assert_eq!(c.placement.len(), 2);
            assert_ne!(c.placement[0].core, c.placement[1].core);
            assert!(c.priorities.iter().all(|p| p.requested() == 7));
        }
    }
}
