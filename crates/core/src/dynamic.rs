//! The dynamic balancing policy — the paper's Section VIII future work.
//!
//! "We plan to extend our OS by introducing an algorithm that will
//! automatically detect if a process deserves a higher amount of resources
//! and which process should be deprived of those resources."
//!
//! [`DynamicBalancer`] is that algorithm, implemented as an
//! [`Observer`] over the engine's synchronization epochs. At every epoch
//! it compares, per core, the compute time of the two resident ranks in
//! the window just finished (smoothed with an EWMA), and sets the pair's
//! priorities so the slower rank gets more decode slots:
//!
//! * ratio below `threshold` — keep both at MEDIUM;
//! * moderately imbalanced — boost the heavy rank to MEDIUM-HIGH (diff 1);
//! * heavily imbalanced — boost to HIGH (diff 2).
//!
//! Three safeguards keep the policy out of the paper's failure modes:
//!
//! 1. the priority difference is **capped at 2** (Table IV's case D shows
//!    the penalized thread collapses superlinearly beyond that);
//! 2. changes move **one step per epoch** (hysteresis);
//! 3. every change is **audited**: if the pair's bottleneck time got
//!    *worse* after an adjustment (e.g. the imbalance was caused by OS
//!    noise that priorities cannot fix, and the penalized rank became the
//!    new bottleneck), the change is reverted and the pair frozen for a
//!    cool-off period.

use mtb_mpisim::engine::{Observer, RankWindow};
use mtb_oskernel::Machine;
use mtb_trace::Cycles;

/// Tunables of the dynamic policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Compute-time ratio above which a pair counts as imbalanced.
    pub threshold: f64,
    /// Ratio above which the policy uses the larger boost.
    pub strong_threshold: f64,
    /// Maximum priority difference the policy will ever create.
    pub max_diff: u8,
    /// EWMA smoothing for the per-rank compute times (0 = no memory,
    /// 1 = frozen).
    pub ewma: f64,
    /// Fractional worsening of the pair bottleneck that triggers a revert.
    pub revert_tolerance: f64,
    /// Epochs a pair stays frozen after a reverted adjustment.
    pub cooloff: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            threshold: 1.10,
            strong_threshold: 1.8,
            max_diff: 2,
            ewma: 0.5,
            revert_tolerance: 0.05,
            cooloff: 8,
        }
    }
}

#[cfg(feature = "verify")]
impl DynamicConfig {
    /// Lint the tunables against the paper's safe-operation envelope.
    /// `max_diff` beyond the Table IV bound, inverted thresholds, or a
    /// degenerate EWMA all return diagnostics instead of silently
    /// misbehaving at run time.
    pub fn lint(&self) -> mtb_verify::Report {
        use mtb_verify::{codes, Diagnostic, Report, Severity};
        let mut report = Report::new();
        if self.max_diff > mtb_verify::prio::DEFAULT_MAX_DIFF {
            report.push(Diagnostic::new(
                codes::CTRL_DIFF,
                Severity::Warning,
                format!(
                    "max_diff {} exceeds the bounded-difference limit {} — beyond it \
                     the penalized thread collapses superlinearly (Table IV case D)",
                    self.max_diff,
                    mtb_verify::prio::DEFAULT_MAX_DIFF
                ),
            ));
        }
        if !(0.0..=1.0).contains(&self.ewma) || self.ewma.is_nan() {
            report.push(Diagnostic::new(
                codes::CTRL_EWMA,
                Severity::Error,
                format!(
                    "ewma {} is outside [0, 1]: smoothing would diverge",
                    self.ewma
                ),
            ));
        }
        if self.threshold < 1.0 {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                format!(
                    "threshold {} is below 1.0: every pair counts as imbalanced and \
                     the policy chases noise",
                    self.threshold
                ),
            ));
        }
        if self.strong_threshold < self.threshold {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                format!(
                    "strong_threshold {} is below threshold {}: the weak tier is \
                     unreachable",
                    self.strong_threshold, self.threshold
                ),
            ));
        }
        if self.cooloff == 0 {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                "cooloff 0 disables the settling window: the controller can \
                 re-adjust every epoch and oscillate around the balance point"
                    .to_string(),
            ));
        }
        if self.revert_tolerance < 0.0 {
            report.push(Diagnostic::new(
                codes::CTRL_REVERT,
                Severity::Warning,
                format!(
                    "revert_tolerance {} is negative: every adjustment is reverted \
                     and pairs freeze immediately",
                    self.revert_tolerance
                ),
            ));
        }
        report
    }
}

/// Audit record for a pending adjustment.
#[derive(Debug, Clone, Copy)]
struct PendingAudit {
    applied_at: usize,
    bottleneck_before: f64,
    previous: (u8, u8),
}

/// Per-pair policy state.
#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    frozen_until: usize,
    pending: Option<PendingAudit>,
}

/// The feedback balancer.
#[derive(Debug)]
pub struct DynamicBalancer {
    cfg: DynamicConfig,
    /// Pairs of ranks sharing a core, derived from the placement.
    pairs: Vec<(usize, usize)>,
    pair_state: Vec<PairState>,
    /// Smoothed per-rank compute time.
    smooth: Vec<f64>,
    /// Current applied priority per rank.
    current: Vec<u8>,
    /// Number of priority changes made (diagnostics).
    adjustments: usize,
    /// Number of audited reverts (diagnostics).
    reverts: usize,
}

impl DynamicBalancer {
    /// Build a balancer for ranks placed as `placement` (same vector the
    /// engine uses).
    pub fn new(placement: &[mtb_oskernel::CtxAddr], cfg: DynamicConfig) -> DynamicBalancer {
        let mut pairs = Vec::new();
        for i in 0..placement.len() {
            for j in (i + 1)..placement.len() {
                if placement[i].core == placement[j].core {
                    pairs.push((i, j));
                }
            }
        }
        DynamicBalancer {
            cfg,
            pair_state: vec![PairState::default(); pairs.len()],
            pairs,
            smooth: vec![0.0; placement.len()],
            current: vec![4; placement.len()],
            adjustments: 0,
            reverts: 0,
        }
    }

    /// With default tunables.
    pub fn with_defaults(placement: &[mtb_oskernel::CtxAddr]) -> DynamicBalancer {
        DynamicBalancer::new(placement, DynamicConfig::default())
    }

    /// Priority changes made so far.
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }

    /// Audited reverts performed so far.
    pub fn reverts(&self) -> usize {
        self.reverts
    }

    /// Currently applied per-rank priorities.
    pub fn current_priorities(&self) -> &[u8] {
        &self.current
    }

    /// Decide the target (heavy, light) priorities for a smoothed compute
    /// ratio `heavy / light >= 1`.
    fn target_for_ratio(&self, ratio: f64) -> (u8, u8) {
        if ratio < self.cfg.threshold {
            (4, 4)
        } else if ratio < self.cfg.strong_threshold || self.cfg.max_diff < 2 {
            (5, 4)
        } else {
            (6, 4)
        }
    }

    /// Move `from` one step toward `to` (hysteresis: single-step changes).
    fn step_toward(from: u8, to: u8) -> u8 {
        match from.cmp(&to) {
            std::cmp::Ordering::Less => from + 1,
            std::cmp::Ordering::Greater => from - 1,
            std::cmp::Ordering::Equal => from,
        }
    }

    fn apply(&mut self, machine: &mut Machine, rank: usize, prio: u8) -> bool {
        if self.current[rank] != prio {
            // The policy lives at OS level; it uses the procfs interface
            // the kernel patch added. 1..=6 always valid there.
            if machine.set_priority_procfs(rank, prio).is_ok() {
                self.current[rank] = prio;
                self.adjustments += 1;
                return true;
            }
        }
        false
    }
}

impl Observer for DynamicBalancer {
    fn on_epoch(&mut self, epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        // Re-derive the core pairs from the live machine: an adaptive
        // mapper (crate::remap) may have migrated ranks since the last
        // epoch. A pairing change resets the per-pair audit state.
        let n = windows.len();
        let mut live_pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if let (Some(a), Some(b)) = (machine.pcb(i), machine.pcb(j)) {
                    if a.affinity.core == b.affinity.core {
                        live_pairs.push((i, j));
                    }
                }
            }
        }
        if live_pairs != self.pairs {
            self.pairs = live_pairs;
            self.pair_state = vec![PairState::default(); self.pairs.len()];
        }

        // Smooth the compute times.
        for w in windows {
            let x = w.compute as f64;
            let s = &mut self.smooth[w.rank];
            *s = if *s == 0.0 {
                x
            } else {
                self.cfg.ewma * *s + (1.0 - self.cfg.ewma) * x
            };
        }

        for p in 0..self.pairs.len() {
            let (a, b) = self.pairs[p];
            let raw_bottleneck = windows
                .iter()
                .filter(|w| w.rank == a || w.rank == b)
                .map(|w| w.compute as f64)
                .fold(0.0, f64::max);

            // Audit a pending adjustment: did the pair get worse?
            if let Some(audit) = self.pair_state[p].pending {
                if epoch > audit.applied_at {
                    self.pair_state[p].pending = None;
                    if raw_bottleneck > audit.bottleneck_before * (1.0 + self.cfg.revert_tolerance)
                    {
                        let (pa, pb) = audit.previous;
                        self.apply(machine, a, pa);
                        self.apply(machine, b, pb);
                        self.reverts += 1;
                        self.pair_state[p].frozen_until = epoch + self.cfg.cooloff;
                        continue;
                    }
                }
            }
            if epoch < self.pair_state[p].frozen_until {
                continue;
            }

            let (sa, sb) = (self.smooth[a], self.smooth[b]);
            if sa <= 0.0 && sb <= 0.0 {
                continue;
            }
            let (heavy, light, ratio) = if sa >= sb {
                (a, b, if sb > 0.0 { sa / sb } else { f64::INFINITY })
            } else {
                (b, a, if sa > 0.0 { sb / sa } else { f64::INFINITY })
            };
            let (th, tl) = self.target_for_ratio(ratio);
            let nh = Self::step_toward(self.current[heavy], th);
            let nl = Self::step_toward(self.current[light], tl);
            // Respect the difference cap even mid-transition.
            if nh.abs_diff(nl) > self.cfg.max_diff {
                continue;
            }
            let previous = (self.current[a], self.current[b]);
            let mut changed = false;
            changed |= self.apply(machine, heavy, nh);
            changed |= self.apply(machine, light, nl);
            if changed {
                self.pair_state[p].pending = Some(PendingAudit {
                    applied_at: epoch,
                    bottleneck_before: raw_bottleneck,
                    previous,
                });
            }
        }
    }
}

/// Accumulate the critical-path slack of a window set: how many cycles the
/// biggest computer exceeds the smallest (a cheap imbalance signal for
/// logging).
pub fn window_spread(windows: &[RankWindow]) -> Cycles {
    let max = windows.iter().map(|w| w.compute).max().unwrap_or(0);
    let min = windows.iter().map(|w| w.compute).min().unwrap_or(0);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute, execute_with, StaticRun};
    use mtb_oskernel::CtxAddr;
    use mtb_workloads::metbench::MetBenchConfig;
    use mtb_workloads::synthetic::SyntheticConfig;

    fn windows(c: &[Cycles]) -> Vec<RankWindow> {
        c.iter()
            .enumerate()
            .map(|(rank, &compute)| RankWindow {
                rank,
                compute,
                sync: 0,
            })
            .collect()
    }

    #[test]
    fn pairs_derive_from_placement() {
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let b = DynamicBalancer::with_defaults(&placement);
        assert_eq!(b.pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn ratio_targets_are_bounded() {
        let b = DynamicBalancer::with_defaults(&[]);
        assert_eq!(b.target_for_ratio(1.0), (4, 4));
        assert_eq!(b.target_for_ratio(1.3), (5, 4));
        assert_eq!(b.target_for_ratio(5.0), (6, 4));
        // Never beyond diff 2.
        let (h, l) = b.target_for_ratio(1e9);
        assert!(h - l <= 2);
    }

    #[test]
    fn single_step_hysteresis() {
        assert_eq!(DynamicBalancer::step_toward(4, 6), 5);
        assert_eq!(DynamicBalancer::step_toward(5, 6), 6);
        assert_eq!(DynamicBalancer::step_toward(6, 4), 5);
        assert_eq!(DynamicBalancer::step_toward(4, 4), 4);
    }

    #[test]
    fn window_spread_measures_max_minus_min() {
        assert_eq!(window_spread(&windows(&[10, 40, 25, 40])), 30);
        assert_eq!(window_spread(&[]), 0);
    }

    #[test]
    fn dynamic_policy_beats_unbalanced_reference_on_metbench() {
        // The headline claim of the future-work section: the automatic
        // policy should recover (most of) the static win without manual
        // tuning.
        let cfg = MetBenchConfig {
            iterations: 30,
            scale: 3e-3,
            ..Default::default()
        };
        let progs = cfg.programs();

        let reference = execute(StaticRun::new(&progs, cfg.placement())).unwrap();

        let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
        let dynamic = execute_with(StaticRun::new(&progs, cfg.placement()), &mut balancer).unwrap();

        assert!(balancer.adjustments() > 0, "policy must have acted");
        assert!(
            (dynamic.total_cycles as f64) < reference.total_cycles as f64 * 0.97,
            "dynamic balancing must beat the reference: {} vs {}",
            dynamic.total_cycles,
            reference.total_cycles
        );
        assert!(dynamic.metrics.imbalance_pct < reference.metrics.imbalance_pct);
    }

    #[test]
    fn policy_never_exceeds_diff_cap() {
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let cfg = MetBenchConfig {
            iterations: 20,
            scale: 1e-3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let mut balancer = DynamicBalancer::with_defaults(&placement);
        let _ = execute_with(StaticRun::new(&progs, placement.clone()), &mut balancer).unwrap();
        let p = balancer.current_priorities();
        assert!(p[0].abs_diff(p[1]) <= 2);
        assert!(p[2].abs_diff(p[3]) <= 2);
    }

    #[test]
    fn audit_reverts_harmful_adjustments() {
        // A balanced application skewed only by OS noise: priorities
        // cannot recover stolen cycles, and penalizing the co-runner makes
        // things worse. The audited policy must end close to where it
        // started and record reverts — and must not blow the runtime up.
        let cfg = SyntheticConfig {
            skew: 1.0,
            base_work: 40_000_000,
            iterations: 10,
            ..Default::default()
        };
        let progs = cfg.programs();
        let noise = mtb_oskernel::noise::interrupt_annoyance(2, 1_500_000, 7_500, 500_000, 50_000);

        let plain =
            execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise.clone())).unwrap();
        let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
        let dynamic = execute_with(
            StaticRun::new(&progs, cfg.placement()).with_noise(noise),
            &mut balancer,
        )
        .unwrap();
        assert!(
            (dynamic.total_cycles as f64) < plain.total_cycles as f64 * 1.10,
            "audited policy must not make noise-imbalance much worse: {} vs {}",
            dynamic.total_cycles,
            plain.total_cycles
        );
    }

    #[test]
    fn audit_state_freezes_pair_after_revert() {
        // Drive the observer by hand: adjustment at epoch 0, worse window
        // at epoch 1 -> revert + freeze.
        let placement: Vec<CtxAddr> = (0..2).map(CtxAddr::from_cpu).collect();
        let mut b = DynamicBalancer::with_defaults(&placement);
        let mut machine = mtb_oskernel::Machine::new(
            mtb_smtsim::chip::build_cores(1, false),
            mtb_oskernel::KernelConfig::patched(),
        );
        machine.spawn(0, "P1", placement[0]).unwrap();
        machine.spawn(1, "P2", placement[1]).unwrap();

        // Epoch 0: rank 0 looks heavy -> boost it.
        b.on_epoch(0, &windows(&[200, 100]), &mut machine);
        assert_eq!(b.current_priorities(), &[5, 4]);
        // Epoch 1: the pair bottleneck got much worse -> revert.
        b.on_epoch(1, &windows(&[400, 390]), &mut machine);
        assert_eq!(b.current_priorities(), &[4, 4], "revert to previous");
        assert_eq!(b.reverts(), 1);
        // Frozen: further imbalance is ignored during cool-off.
        b.on_epoch(2, &windows(&[300, 100]), &mut machine);
        assert_eq!(b.current_priorities(), &[4, 4]);
    }

    #[cfg(feature = "verify")]
    #[test]
    fn config_lint_flags_unsafe_tunables() {
        use mtb_verify::{codes, Severity};
        assert!(DynamicConfig::default().lint().diagnostics.is_empty());
        let bad = DynamicConfig {
            max_diff: 5,
            threshold: 0.8,
            strong_threshold: 0.5,
            ewma: 1.5,
            revert_tolerance: -0.1,
            cooloff: 0,
        };
        let r = bad.lint();
        assert_eq!(r.count(Severity::Error), 1, "{r}");
        assert_eq!(r.count(Severity::Warning), 5, "{r}");
        for code in [
            codes::CTRL_DIFF,
            codes::CTRL_EWMA,
            codes::CTRL_THRASH,
            codes::CTRL_REVERT,
        ] {
            assert!(r.has_code(code), "missing {code}: {r}");
        }
        assert!(!r.has_code(codes::PRIO_DIFF), "{r}");
    }
}
