//! The dynamic balancing policy — the paper's Section VIII future work.
//!
//! "We plan to extend our OS by introducing an algorithm that will
//! automatically detect if a process deserves a higher amount of resources
//! and which process should be deprived of those resources."
//!
//! [`DynamicBalancer`] is that algorithm, implemented as an
//! [`Observer`] over the engine's synchronization epochs. At every epoch
//! it compares, per core, the compute time of the two resident ranks in
//! the window just finished (smoothed with an EWMA), and sets the pair's
//! priorities so the slower rank gets more decode slots:
//!
//! * ratio below `threshold` — keep both at MEDIUM;
//! * moderately imbalanced — boost the heavy rank to MEDIUM-HIGH (diff 1);
//! * heavily imbalanced — boost to HIGH (diff 2).
//!
//! Four safeguards keep the policy out of the paper's failure modes:
//!
//! 1. the priority difference is **capped at 2** (Table IV's case D shows
//!    the penalized thread collapses superlinearly beyond that);
//! 2. changes move **one step per epoch** (hysteresis);
//! 3. a pair never takes **two opposing adjustments within one cool-off
//!    window** — a boost followed by a de-boost (or vice versa) must be
//!    at least `cooloff` epochs apart, so a ratio hovering around the
//!    threshold cannot make priorities thrash;
//! 4. every change is **audited**: if the pair's bottleneck time got
//!    *worse* after an adjustment (e.g. the imbalance was caused by OS
//!    noise that priorities cannot fix, and the penalized rank became the
//!    new bottleneck), the change is reverted and the pair frozen for a
//!    cool-off period.
//!
//! [`TwoLevelController`] wraps the balancer in the full v2 scheme: a
//! [`ProgressModel`](crate::observe::ProgressModel) turns retired
//! instruction counts into per-rank progress deficits against the static
//! plan (level 2's inputs), and when intra-core tuning saturates — every
//! imbalanced pair already at the difference cap or frozen — while the
//! cross-core load split stays lopsided, level 1 remaps ranks across
//! cores ([`crate::remap::realize_placement`]) and lets level 2 retune
//! the new pairs.

use crate::observe::ProgressModel;
use mtb_mpisim::engine::{Observer, RankWindow};
use mtb_oskernel::Machine;
use mtb_smtsim::model::WorkloadProfile;
use mtb_trace::Cycles;

/// Tunables of the dynamic policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Compute-time ratio above which a pair counts as imbalanced.
    pub threshold: f64,
    /// Ratio above which the policy uses the larger boost.
    pub strong_threshold: f64,
    /// Ratio below which an *engaged* boost relaxes back toward MEDIUM.
    /// Keeping this under `threshold` makes the engage/relax pair a
    /// Schmitt trigger: a ratio hovering at the engage threshold cannot
    /// chatter a boost on and off, it has to fall convincingly below the
    /// relax floor first.
    pub relax_threshold: f64,
    /// Maximum priority difference the policy will ever create.
    pub max_diff: u8,
    /// EWMA smoothing for the per-rank compute times (0 = no memory,
    /// 1 = frozen).
    pub ewma: f64,
    /// Fractional worsening of the pair bottleneck that triggers a revert.
    pub revert_tolerance: f64,
    /// Epochs a pair stays frozen after a reverted adjustment.
    pub cooloff: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            threshold: 1.10,
            strong_threshold: 1.8,
            relax_threshold: 1.05,
            max_diff: 2,
            ewma: 0.5,
            revert_tolerance: 0.05,
            cooloff: 8,
        }
    }
}

#[cfg(feature = "verify")]
impl DynamicConfig {
    /// Lint the tunables against the paper's safe-operation envelope.
    /// `max_diff` beyond the Table IV bound, inverted thresholds, or a
    /// degenerate EWMA all return diagnostics instead of silently
    /// misbehaving at run time.
    pub fn lint(&self) -> mtb_verify::Report {
        use mtb_verify::{codes, Diagnostic, Report, Severity};
        let mut report = Report::new();
        if self.max_diff > mtb_verify::prio::DEFAULT_MAX_DIFF {
            report.push(Diagnostic::new(
                codes::CTRL_DIFF,
                Severity::Warning,
                format!(
                    "max_diff {} exceeds the bounded-difference limit {} — beyond it \
                     the penalized thread collapses superlinearly (Table IV case D)",
                    self.max_diff,
                    mtb_verify::prio::DEFAULT_MAX_DIFF
                ),
            ));
        }
        if !(0.0..=1.0).contains(&self.ewma) || self.ewma.is_nan() {
            report.push(Diagnostic::new(
                codes::CTRL_EWMA,
                Severity::Error,
                format!(
                    "ewma {} is outside [0, 1]: smoothing would diverge",
                    self.ewma
                ),
            ));
        }
        if self.threshold < 1.0 {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                format!(
                    "threshold {} is below 1.0: every pair counts as imbalanced and \
                     the policy chases noise",
                    self.threshold
                ),
            ));
        }
        if self.relax_threshold > self.threshold {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                format!(
                    "relax_threshold {} exceeds threshold {}: the Schmitt band is \
                     inverted and a boost can relax the epoch after it engages",
                    self.relax_threshold, self.threshold
                ),
            ));
        }
        if self.strong_threshold < self.threshold {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                format!(
                    "strong_threshold {} is below threshold {}: the weak tier is \
                     unreachable",
                    self.strong_threshold, self.threshold
                ),
            ));
        }
        if self.cooloff == 0 {
            report.push(Diagnostic::new(
                codes::CTRL_THRASH,
                Severity::Warning,
                "cooloff 0 disables the settling window: the controller can \
                 re-adjust every epoch and oscillate around the balance point"
                    .to_string(),
            ));
        }
        if self.revert_tolerance < 0.0 {
            report.push(Diagnostic::new(
                codes::CTRL_REVERT,
                Severity::Warning,
                format!(
                    "revert_tolerance {} is negative: every adjustment is reverted \
                     and pairs freeze immediately",
                    self.revert_tolerance
                ),
            ));
        }
        report
    }
}

/// Audit record for a pending adjustment.
#[derive(Debug, Clone, Copy)]
struct PendingAudit {
    applied_at: usize,
    bottleneck_before: f64,
    previous: (u8, u8),
}

/// Per-pair policy state.
#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    frozen_until: usize,
    pending: Option<PendingAudit>,
    /// Direction of the last non-revert adjustment: the sign of the
    /// change of the pair's signed priority difference. An opposing
    /// adjustment within `cooloff` epochs of `last_change_at` is skipped.
    last_dir: i8,
    last_change_at: usize,
}

/// The feedback balancer.
#[derive(Debug)]
pub struct DynamicBalancer {
    cfg: DynamicConfig,
    /// Pairs of ranks sharing a core, derived from the placement.
    pairs: Vec<(usize, usize)>,
    pair_state: Vec<PairState>,
    /// Smoothed per-rank compute time.
    smooth: Vec<f64>,
    /// Per-rank progress-deficit weights multiplied into the smoothed
    /// compute times before pair decisions (empty = all 1.0). Set each
    /// epoch by the two-level controller from its [`ProgressModel`].
    weights: Vec<f64>,
    /// Plan expectation (instructions per rank) for the upcoming decision
    /// window — the feedforward signal. When present, pair decisions come
    /// from it (weighted by the deficits) instead of the observed compute
    /// times; empty = reactive control only.
    plan: Vec<f64>,
    /// The previous `plan` — the expectation for the window just
    /// measured, used to normalize the audit bottleneck so the plan's own
    /// per-iteration load swings cannot fire spurious reverts.
    plan_prev: Vec<f64>,
    /// Per-rank workload profiles: when present, pair targets come from
    /// the Table II/III decode-share model ([`crate::predictor`]) instead
    /// of the fixed ratio ladder.
    profiles: Option<Vec<WorkloadProfile>>,
    /// Current applied priority per rank.
    current: Vec<u8>,
    /// Number of priority changes made (diagnostics).
    adjustments: usize,
    /// Number of audited reverts (diagnostics).
    reverts: usize,
}

impl DynamicBalancer {
    /// Build a balancer for ranks placed as `placement` (same vector the
    /// engine uses).
    pub fn new(placement: &[mtb_oskernel::CtxAddr], cfg: DynamicConfig) -> DynamicBalancer {
        let mut pairs = Vec::new();
        for i in 0..placement.len() {
            for j in (i + 1)..placement.len() {
                if placement[i].core == placement[j].core {
                    pairs.push((i, j));
                }
            }
        }
        DynamicBalancer {
            cfg,
            pair_state: vec![PairState::default(); pairs.len()],
            pairs,
            smooth: vec![0.0; placement.len()],
            weights: Vec::new(),
            plan: Vec::new(),
            plan_prev: Vec::new(),
            profiles: None,
            current: vec![4; placement.len()],
            adjustments: 0,
            reverts: 0,
        }
    }

    /// With default tunables.
    pub fn with_defaults(placement: &[mtb_oskernel::CtxAddr]) -> DynamicBalancer {
        DynamicBalancer::new(placement, DynamicConfig::default())
    }

    /// Priority changes made so far.
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }

    /// Audited reverts performed so far.
    pub fn reverts(&self) -> usize {
        self.reverts
    }

    /// Currently applied per-rank priorities.
    pub fn current_priorities(&self) -> &[u8] {
        &self.current
    }

    /// Smoothed per-rank compute-time estimates (0.0 = no sample yet).
    pub fn smoothed(&self) -> &[f64] {
        &self.smooth
    }

    /// Install per-rank progress-deficit weights for the next decisions
    /// (the progress-equalization hook). Weights multiply the smoothed
    /// compute times, so a rank behind its static plan looks heavier than
    /// its last window alone suggests.
    pub fn set_weights(&mut self, weights: &[f64]) {
        self.weights.clear();
        self.weights.extend_from_slice(weights);
    }

    /// Install per-rank workload profiles: pair targets then come from
    /// the Table II/III decode-share model instead of the ratio ladder.
    pub fn set_profiles(&mut self, profiles: Vec<WorkloadProfile>) {
        self.profiles = Some(profiles);
    }

    /// Install the plan expectation for the upcoming decision window (the
    /// feedforward signal); the expectation previously installed shifts
    /// to describe the window just measured. Called by the two-level
    /// controller at every decision epoch.
    pub fn set_plan(&mut self, plan: &[f64]) {
        std::mem::swap(&mut self.plan, &mut self.plan_prev);
        self.plan.clear();
        self.plan.extend_from_slice(plan);
    }

    fn weight(&self, rank: usize) -> f64 {
        self.weights.get(rank).copied().unwrap_or(1.0)
    }

    /// Reset every rank to MEDIUM and clear the audit state — called by
    /// the two-level controller after a cross-core remap, when the old
    /// intra-pair decisions no longer describe any live pair.
    pub fn reset_priorities(&mut self, machine: &mut Machine) {
        for r in 0..self.current.len() {
            if self.current[r] != 4 && machine.set_priority_procfs(r, 4).is_ok() {
                self.current[r] = 4;
            }
        }
        for s in &mut self.pair_state {
            *s = PairState::default();
        }
    }

    /// The pair's decision signals, in estimated instructions.
    ///
    /// Feedforward first: when the plan expectation for the upcoming
    /// window is installed, it *is* the instruction estimate — exact
    /// per-iteration loads, immune to window noise — scaled by each
    /// rank's progress-deficit weight so sustained deviation from the
    /// plan still steers the decision (feedback correction).
    ///
    /// Otherwise, reactive: smoothed compute times weighted by the
    /// deficits and — when the decode-share profiles are installed —
    /// multiplied by each side's predicted throughput at the priorities
    /// *currently in force*. Time × throughput estimates instructions, a
    /// priority-invariant load measure: a boosted pair whose compute
    /// times equalized is recognized as balanced *by control* (signals
    /// still skewed → hold the boost), not balanced by work (signals
    /// even → relax toward MEDIUM). Without this, the feedback loop
    /// would undo its own corrections as soon as they work.
    fn pair_signals(&self, a: usize, b: usize) -> (f64, f64) {
        if let (Some(&ea), Some(&eb)) = (self.plan.get(a), self.plan.get(b)) {
            if ea > 0.0 && eb > 0.0 {
                return (ea * self.weight(a), eb * self.weight(b));
            }
        }
        let mut sa = self.smooth[a] * self.weight(a);
        let mut sb = self.smooth[b] * self.weight(b);
        if let Some(profiles) = &self.profiles {
            if let (Some(pa), Some(pb)) = (profiles.get(a), profiles.get(b)) {
                let (ra, rb) =
                    crate::predictor::predict_pair(pa, pb, self.current[a], self.current[b]);
                if ra > 0.0 && rb > 0.0 {
                    sa *= ra;
                    sb *= rb;
                }
            }
        }
        (sa, sb)
    }

    /// Re-derive the core pairs from the live machine (a remap may have
    /// migrated ranks). A pairing change resets the per-pair audit state.
    fn refresh_pairs(&mut self, machine: &Machine, n: usize) {
        let mut live_pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if let (Some(a), Some(b)) = (machine.pcb(i), machine.pcb(j)) {
                    if a.affinity.core == b.affinity.core {
                        live_pairs.push((i, j));
                    }
                }
            }
        }
        if live_pairs != self.pairs {
            self.pairs = live_pairs;
            self.pair_state = vec![PairState::default(); self.pairs.len()];
        }
    }

    /// Apply the static plan's priorities in one go: for each live pair,
    /// jump straight to the decode-share model's target for the given
    /// per-rank work totals (no single-stepping, no audit — the plan is
    /// trusted the way a hand-tuned static case is; hysteresis and audits
    /// govern the online corrections that follow). The two-level
    /// controller calls this once at start-up so apps whose sync
    /// structure offers few decision points (BT-MZ's neighbour exchanges
    /// reach a global barrier only at the end) still run the bulk of
    /// their work under the plan's setting.
    pub fn prime(&mut self, machine: &mut Machine, work: &[f64]) {
        self.refresh_pairs(machine, work.len());
        for p in 0..self.pairs.len() {
            let (a, b) = self.pairs[p];
            let (wa, wb) = (work[a], work[b]);
            if wa <= 0.0 && wb <= 0.0 {
                continue;
            }
            let (heavy, light) = if wa >= wb { (a, b) } else { (b, a) };
            let (lo, hi) = (wa.min(wb), wa.max(wb));
            let ratio = if lo > 0.0 { hi / lo } else { f64::INFINITY };
            let (th, tl) = self.pair_target(heavy, light, ratio, hi, lo);
            self.apply(machine, heavy, th);
            self.apply(machine, light, tl);
        }
    }

    /// Has intra-core tuning saturated? True when no pair can be improved
    /// further: each is either balanced (ratio below threshold), frozen
    /// by an audit, or already at the bounded-difference cap. The
    /// two-level controller uses this as the level-1 trigger.
    pub fn saturated(&self, epoch: usize) -> bool {
        for (p, &(a, b)) in self.pairs.iter().enumerate() {
            let (sa, sb) = self.pair_signals(a, b);
            if sa <= 0.0 && sb <= 0.0 {
                continue;
            }
            let (lo, hi) = (sa.min(sb), sa.max(sb));
            let ratio = if lo > 0.0 { hi / lo } else { f64::INFINITY };
            if ratio < self.cfg.threshold || epoch < self.pair_state[p].frozen_until {
                continue;
            }
            let heavy = if sa >= sb { a } else { b };
            if self.current[a].abs_diff(self.current[b]) < self.cfg.max_diff
                && self.current[heavy] < 6
            {
                return false; // this pair still has headroom
            }
        }
        true
    }

    /// Decide the target (heavy, light) priorities for a smoothed compute
    /// ratio `heavy / light >= 1`.
    fn target_for_ratio(&self, ratio: f64) -> (u8, u8) {
        if ratio < self.cfg.threshold {
            (4, 4)
        } else if ratio < self.cfg.strong_threshold || self.cfg.max_diff < 2 {
            (5, 4)
        } else {
            (6, 4)
        }
    }

    /// Target priorities for a pair: the decode-share model when profiles
    /// are installed (normalized so the lighter side sits at MEDIUM, like
    /// the paper's tables), the ratio ladder otherwise. A ratio below the
    /// imbalance threshold targets (MEDIUM, MEDIUM) — the model is not
    /// consulted for balanced pairs, preserving the hysteresis guarantee.
    ///
    /// Two noise guards protect an already-engaged boost, because on a
    /// workload whose per-iteration load moves (SIESTA) the smoothed
    /// ratio fluctuates around the mean and reacting to every crossing
    /// costs more than the imbalance itself:
    /// - Schmitt trigger: the boost relaxes only below `relax_threshold`,
    ///   not at the first dip under the engage threshold; in the band
    ///   between the two it holds.
    /// - Reversal guard: when the observed heavy side is the one the pair
    ///   currently *demotes*, crossing the boost over needs
    ///   `strong_threshold` — a transient inversion holds instead of
    ///   buying a revert plus a frozen window.
    fn pair_target(&self, heavy: usize, light: usize, ratio: f64, wh: f64, wl: f64) -> (u8, u8) {
        let cur = (self.current[heavy], self.current[light]);
        if cur.0 < cur.1 {
            if ratio < self.cfg.strong_threshold {
                return cur;
            }
        } else if cur.0 > cur.1 && ratio < self.cfg.threshold {
            return if ratio < self.cfg.relax_threshold {
                (4, 4)
            } else {
                cur
            };
        } else if ratio < self.cfg.threshold {
            return (4, 4);
        }
        if let Some(profiles) = &self.profiles {
            if let (Some(ph), Some(pl)) = (profiles.get(heavy), profiles.get(light)) {
                let (th, tl, _) = crate::predictor::best_priority_pair(
                    ph,
                    pl,
                    wh.max(1.0) as u64,
                    wl.max(1.0) as u64,
                    self.cfg.max_diff,
                );
                // Shift so the lighter side sits at MEDIUM (decode share
                // depends on the difference, not the absolute level).
                let shift = 4 - i16::from(th.min(tl));
                let th = (i16::from(th) + shift).clamp(1, 6) as u8;
                let tl = (i16::from(tl) + shift).clamp(1, 6) as u8;
                return (th, tl);
            }
        }
        self.target_for_ratio(ratio)
    }

    /// Move `from` one step toward `to` (hysteresis: single-step changes).
    fn step_toward(from: u8, to: u8) -> u8 {
        match from.cmp(&to) {
            std::cmp::Ordering::Less => from + 1,
            std::cmp::Ordering::Greater => from - 1,
            std::cmp::Ordering::Equal => from,
        }
    }

    fn apply(&mut self, machine: &mut Machine, rank: usize, prio: u8) -> bool {
        if self.current[rank] != prio {
            // The policy lives at OS level; it uses the procfs interface
            // the kernel patch added. 1..=6 always valid there.
            if machine.set_priority_procfs(rank, prio).is_ok() {
                self.current[rank] = prio;
                self.adjustments += 1;
                return true;
            }
        }
        false
    }
}

impl Observer for DynamicBalancer {
    fn on_epoch(&mut self, epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        // Re-derive the core pairs from the live machine: an adaptive
        // mapper (crate::remap) may have migrated ranks since the last
        // epoch.
        let n = windows.len();
        self.refresh_pairs(machine, n);

        // Smooth the compute times.
        for w in windows {
            let x = w.compute as f64;
            let s = &mut self.smooth[w.rank];
            *s = if *s == 0.0 {
                x
            } else {
                self.cfg.ewma * *s + (1.0 - self.cfg.ewma) * x
            };
        }

        for p in 0..self.pairs.len() {
            let (a, b) = self.pairs[p];
            let mut raw_bottleneck = windows
                .iter()
                .filter(|w| w.rank == a || w.rank == b)
                .map(|w| w.compute as f64)
                .fold(0.0, f64::max);
            // With a plan installed, audit cycles *per expected
            // instruction* rather than raw cycles: the plan's own
            // per-iteration load swings then cancel out of the
            // before/after comparison, and only the adjustment's real
            // effect (throughput) remains. `plan_prev` describes the
            // window just measured.
            let expected = self
                .plan_prev
                .get(a)
                .copied()
                .unwrap_or(0.0)
                .max(self.plan_prev.get(b).copied().unwrap_or(0.0));
            if expected > 0.0 {
                raw_bottleneck /= expected;
            }

            // Audit a pending adjustment: did the pair get worse?
            if let Some(audit) = self.pair_state[p].pending {
                if epoch > audit.applied_at {
                    self.pair_state[p].pending = None;
                    if raw_bottleneck > audit.bottleneck_before * (1.0 + self.cfg.revert_tolerance)
                    {
                        let (pa, pb) = audit.previous;
                        self.apply(machine, a, pa);
                        self.apply(machine, b, pb);
                        self.reverts += 1;
                        self.pair_state[p].frozen_until = epoch + self.cfg.cooloff;
                        continue;
                    }
                }
            }
            if epoch < self.pair_state[p].frozen_until {
                continue;
            }

            let (sa, sb) = self.pair_signals(a, b);
            if sa <= 0.0 && sb <= 0.0 {
                continue;
            }
            let (heavy, light, ratio) = if sa >= sb {
                (a, b, if sb > 0.0 { sa / sb } else { f64::INFINITY })
            } else {
                (b, a, if sa > 0.0 { sb / sa } else { f64::INFINITY })
            };
            let (th, tl) = self.pair_target(heavy, light, ratio, sa.max(sb), sa.min(sb));
            let nh = Self::step_toward(self.current[heavy], th);
            let nl = Self::step_toward(self.current[light], tl);
            // Respect the difference cap even mid-transition.
            if nh.abs_diff(nl) > self.cfg.max_diff {
                continue;
            }
            // An adjustment that reverses the pair's priority-difference
            // trend within one cool-off window of the last one is
            // hysteresis-blocked: the controller never thrashes around a
            // ratio that hovers at the threshold.
            let da = i8::try_from(self.current[a]).unwrap_or(0)
                - i8::try_from(self.current[b]).unwrap_or(0);
            let db = if heavy == a {
                i8::try_from(nh).unwrap_or(0) - i8::try_from(nl).unwrap_or(0)
            } else {
                i8::try_from(nl).unwrap_or(0) - i8::try_from(nh).unwrap_or(0)
            };
            let dir = (db - da).signum();
            let st = self.pair_state[p];
            if dir != 0 && st.last_dir == -dir && epoch < st.last_change_at + self.cfg.cooloff {
                continue;
            }
            let previous = (self.current[a], self.current[b]);
            let mut changed = false;
            changed |= self.apply(machine, heavy, nh);
            changed |= self.apply(machine, light, nl);
            if changed {
                if dir != 0 {
                    self.pair_state[p].last_dir = dir;
                    self.pair_state[p].last_change_at = epoch;
                }
                self.pair_state[p].pending = Some(PendingAudit {
                    applied_at: epoch,
                    bottleneck_before: raw_bottleneck,
                    previous,
                });
            }
        }
    }
}

/// Tunables of the two-level controller wrapped around
/// [`DynamicBalancer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Level-2 (within-core priority) policy tunables.
    pub balance: DynamicConfig,
    /// Sync epochs aggregated per decision window (1 = decide at every
    /// barrier). Longer windows average out per-epoch jitter at the cost
    /// of convergence lag — `lint` flags windows that cannot converge
    /// within the app's makespan.
    pub window: usize,
    /// Epochs of observation before level 1 may consider a remap.
    pub settle: usize,
    /// Minimum max/min cross-core load ratio before a remap is worthwhile.
    pub remap_ratio: f64,
    /// Consecutive saturated decision windows before level 1 fires.
    pub remap_after: usize,
    /// Cross-core remap budget (0 disables level 1; migrations thrash
    /// caches, so the default allows one corrective remap like the
    /// paper's manual pairing).
    pub max_remaps: usize,
    /// The placement is pinned (deployment forbids migration): level 1
    /// never fires, and `lint` flags a nonzero remap budget.
    pub pinned: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            balance: DynamicConfig::default(),
            window: 1,
            settle: 3,
            remap_ratio: 1.25,
            remap_after: 3,
            max_remaps: 1,
            pinned: false,
        }
    }
}

#[cfg(feature = "verify")]
impl ControllerConfig {
    /// Lint the two-level tunables: everything [`DynamicConfig::lint`]
    /// checks, plus the convergence-lag bound ([`MTB-CTRL-LAG`]) against
    /// an optional makespan horizon (total sync epochs of the app, e.g.
    /// from the static profiles) and the pinned-placement contradiction
    /// ([`MTB-CTRL-REMAP-PINNED`]).
    ///
    /// [`MTB-CTRL-LAG`]: mtb_verify::codes::CTRL_LAG
    /// [`MTB-CTRL-REMAP-PINNED`]: mtb_verify::codes::CTRL_REMAP_PINNED
    pub fn lint(&self, horizon_epochs: Option<usize>) -> mtb_verify::Report {
        use mtb_verify::{codes, Diagnostic, Severity};
        let mut report = self.balance.lint();
        if self.window == 0 {
            report.push(Diagnostic::new(
                codes::CTRL_LAG,
                Severity::Error,
                "window 0 aggregates forever and never decides".to_string(),
            ));
        } else if let Some(h) = horizon_epochs {
            // Worst case to converge: settle, then one audited
            // single-step walk up the ladder (max_diff + 1 decision
            // windows), then one revert's cool-off detour.
            let needed = self.settle
                + self.window * (self.balance.max_diff as usize + 1)
                + self.balance.cooloff;
            if needed > h {
                report.push(Diagnostic::new(
                    codes::CTRL_LAG,
                    Severity::Warning,
                    format!(
                        "decision window {} cannot converge within the app's {} sync \
                         epochs (worst case needs {}: settle {} + {} single-step \
                         windows + cooloff {})",
                        self.window,
                        h,
                        needed,
                        self.settle,
                        self.balance.max_diff + 1,
                        self.balance.cooloff
                    ),
                ));
            }
        }
        if self.pinned && self.max_remaps > 0 {
            report.push(Diagnostic::new(
                codes::CTRL_REMAP_PINNED,
                Severity::Warning,
                format!(
                    "placement is pinned but max_remaps is {}: level 1 would request \
                     migrations the deployment forbids, leaving saturated pairs stuck \
                     at the priority cap",
                    self.max_remaps
                ),
            ));
        }
        report
    }
}

/// The v2 online controller: progress-equalizing priority tuning within
/// cores (level 2, a [`DynamicBalancer`] fed progress deficits from a
/// [`ProgressModel`]), cross-core remapping when that saturates (level 1,
/// via [`crate::remap::realize_placement`]).
///
/// Determinism contract: every decision is a pure function of the epoch
/// windows, the machine state at the barrier, and the static expectation
/// table — nothing samples wall-clock time or thread scheduling, so runs
/// are bit-identical at any `MTB_JOBS`, stepping mode, fidelity, and
/// across checkpoint/resume (epoch boundaries are forced merge points).
#[derive(Debug)]
pub struct TwoLevelController {
    cfg: ControllerConfig,
    balancer: DynamicBalancer,
    model: Option<ProgressModel>,
    /// Aggregated (compute, sync) sums per rank for the open window.
    acc: Vec<(Cycles, Cycles)>,
    epochs_seen: usize,
    /// Consecutive saturated decision windows with lopsided cores.
    streak: usize,
    remaps: usize,
    /// Has the plan-primed start been applied (or skipped for lack of a
    /// model)?
    primed: bool,
}

impl TwoLevelController {
    /// Build a controller for ranks placed as `placement`.
    pub fn new(placement: &[mtb_oskernel::CtxAddr], cfg: ControllerConfig) -> TwoLevelController {
        TwoLevelController {
            cfg,
            balancer: DynamicBalancer::new(placement, cfg.balance),
            model: None,
            acc: vec![(0, 0); placement.len()],
            epochs_seen: 0,
            streak: 0,
            remaps: 0,
            primed: false,
        }
    }

    /// With default tunables.
    pub fn with_defaults(placement: &[mtb_oskernel::CtxAddr]) -> TwoLevelController {
        TwoLevelController::new(placement, ControllerConfig::default())
    }

    /// Install a static progress-expectation table (level 2 then weighs
    /// observed compute times by each rank's plan deficit).
    pub fn with_model(mut self, model: ProgressModel) -> TwoLevelController {
        self.model = Some(model);
        self
    }

    /// Derive both the progress model and the per-rank workload profiles
    /// from the programs via the static analyzer, so level 2 tunes pairs
    /// through the same Table II/III decode-share model the engine uses.
    /// Falls back to observation-only control when the ranks' sync
    /// structures admit no common epoch grid.
    #[cfg(feature = "verify")]
    pub fn for_programs(
        programs: &[mtb_mpisim::Program],
        placement: &[mtb_oskernel::CtxAddr],
        cfg: ControllerConfig,
    ) -> TwoLevelController {
        let mut ctl = TwoLevelController::new(placement, cfg);
        ctl.model = ProgressModel::from_programs(programs);
        let profiles: Vec<WorkloadProfile> = mtb_verify::infer_profiles(programs)
            .into_iter()
            .map(|p| p.profile)
            .collect();
        if profiles.len() == placement.len() {
            ctl.balancer.set_profiles(profiles);
        }
        ctl
    }

    /// Priority changes made so far (level 2).
    pub fn adjustments(&self) -> usize {
        self.balancer.adjustments()
    }

    /// Audited reverts performed so far (level 2).
    pub fn reverts(&self) -> usize {
        self.balancer.reverts()
    }

    /// Cross-core remaps performed so far (level 1).
    pub fn remaps(&self) -> usize {
        self.remaps
    }

    /// Currently applied per-rank priorities.
    pub fn current_priorities(&self) -> &[u8] {
        self.balancer.current_priorities()
    }

    /// The plan-primed start: before reacting to anything, realize the
    /// static plan's pairing and priorities so the first epochs already
    /// run close to the best static setting. Both levels fire from the
    /// plan's total-work expectation — level 1 pairs heavy with light
    /// (subject to `pinned` and the remap budget), level 2 jumps each
    /// pair to the decode-share model's target. Apps whose ranks meet a
    /// global barrier only at the end (BT-MZ's neighbour exchanges) get
    /// exactly one usable decision point, and this makes it count; apps
    /// with per-iteration barriers then refine online from here.
    fn prime_from_plan(&mut self, epoch: usize, machine: &mut Machine) {
        let Some(model) = &self.model else { return };
        let work = model.totals();
        let n = work.len();
        let cores = machine.num_contexts() / 2;
        if !self.cfg.pinned
            && self.remaps < self.cfg.max_remaps
            && n > 0
            && n.is_multiple_of(2)
            && n <= cores * 2
            && (0..n).all(|r| machine.pcb(r).is_some())
        {
            let w: Vec<u64> = work.iter().map(|&x| x.max(0.0) as u64).collect();
            let desired = crate::mapper::pair_by_load(&w, cores);
            let live: Vec<mtb_oskernel::CtxAddr> = (0..n)
                .map(|r| machine.pcb(r).map(|p| p.affinity).unwrap_or(desired[r]))
                .collect();
            let live_max = crate::mapper::max_core_load(&w, &live);
            let desired_max = crate::mapper::max_core_load(&w, &desired);
            // A softer benefit bar than the online remap's: nothing is
            // tuned yet and caches are cold, so any real improvement in
            // the plan's max per-core load is worth taking (0.5% filters
            // ties, where migrating would just shuffle seats).
            if (desired_max as f64) < live_max as f64 * 0.995 {
                let moves = crate::remap::realize_placement(machine, &desired);
                if moves > 0 {
                    self.remaps += 1;
                }
            }
        }
        self.balancer.prime(machine, &work);
        // Install the expectation for the first real window so the first
        // decision's feedforward and audit normalization line up with
        // what the engine will measure next.
        let model = self.model.as_ref().expect("checked above");
        self.balancer
            .set_plan(&model.upcoming(epoch, self.cfg.window.max(1)));
    }

    /// Level 1: when level 2 is saturated and the cores are still
    /// lopsided for `remap_after` consecutive decision windows, migrate
    /// to the heavy-with-light pairing the observed loads imply.
    fn maybe_remap(&mut self, epoch: usize, machine: &mut Machine) {
        if self.cfg.pinned || self.remaps >= self.cfg.max_remaps {
            return;
        }
        if self.epochs_seen < self.cfg.settle {
            return;
        }
        let loads = self.balancer.smoothed();
        let n = loads.len();
        let cores = machine.num_contexts() / 2;
        if n == 0 || !n.is_multiple_of(2) || n > cores * 2 {
            return;
        }
        // Per-core load split from the live placement.
        let mut core_load = vec![0.0f64; cores];
        let mut hosted = vec![false; cores];
        for (r, &load) in loads.iter().enumerate() {
            let Some(p) = machine.pcb(r) else { return };
            core_load[p.affinity.core] += load;
            hosted[p.affinity.core] = true;
        }
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for (c, &l) in core_load.iter().enumerate() {
            if hosted[c] {
                max = max.max(l);
                min = min.min(l);
            }
        }
        let lopsided = min > 0.0 && max / min >= self.cfg.remap_ratio;
        if lopsided && self.balancer.saturated(epoch) {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak < self.cfg.remap_after {
            return;
        }
        self.streak = 0;
        let work: Vec<u64> = loads.iter().map(|&s| s as u64).collect();
        let desired = crate::mapper::pair_by_load(&work, cores);
        // Only migrate for a real predicted gain: if the heavy-with-light
        // pairing barely lowers the max per-core load, the remap would
        // just shuffle seats and throw away tuned priorities.
        let live: Vec<mtb_oskernel::CtxAddr> = (0..n)
            .map(|r| machine.pcb(r).map(|p| p.affinity).unwrap_or(desired[r]))
            .collect();
        let live_max = crate::mapper::max_core_load(&work, &live);
        let desired_max = crate::mapper::max_core_load(&work, &desired);
        if (desired_max as f64) >= live_max as f64 * 0.95 {
            return;
        }
        let moves = crate::remap::realize_placement(machine, &desired);
        if moves > 0 {
            self.remaps += 1;
            // The old intra-pair decisions describe pairs that no longer
            // exist: restart level 2 from MEDIUM on the new pairing.
            self.balancer.reset_priorities(machine);
        }
    }
}

impl Observer for TwoLevelController {
    fn on_epoch(&mut self, epoch: usize, windows: &[RankWindow], machine: &mut Machine) {
        for w in windows {
            if w.rank >= self.acc.len() {
                self.acc.resize(w.rank + 1, (0, 0));
            }
            self.acc[w.rank].0 += w.compute;
            self.acc[w.rank].1 += w.sync;
        }
        self.epochs_seen += 1;
        if !self.primed {
            self.primed = true;
            if self.model.is_some() {
                self.prime_from_plan(epoch, machine);
                // Discard the first window's observations: they describe
                // start-up (often an init phase a fraction of an
                // iteration long), and the plan just applied supersedes
                // any reaction to them.
                for slot in &mut self.acc {
                    *slot = (0, 0);
                }
                return;
            }
        }
        if !self.epochs_seen.is_multiple_of(self.cfg.window.max(1)) {
            return;
        }
        let agg: Vec<RankWindow> = self
            .acc
            .iter()
            .enumerate()
            .map(|(rank, &(compute, sync))| RankWindow {
                rank,
                compute,
                sync,
            })
            .collect();
        for slot in &mut self.acc {
            *slot = (0, 0);
        }
        // Progress equalization: weigh observed compute by each rank's
        // deficit against the static plan, so a rank behind schedule is
        // boosted even in a window where it happened to run short.
        if let Some(model) = &self.model {
            let retired: Vec<u64> = (0..agg.len()).map(|r| machine.retired(r)).collect();
            let deficits = model.deficits(epoch, &retired);
            self.balancer.set_weights(&deficits);
            // Feedforward: the plan's expectation for the upcoming
            // decision window drives the pair decisions; the deficits
            // above correct it when reality drifts off-plan.
            self.balancer
                .set_plan(&model.upcoming(epoch, self.cfg.window.max(1)));
        }
        self.balancer.on_epoch(epoch, &agg, machine);
        self.maybe_remap(epoch, machine);
    }
}

/// Accumulate the critical-path slack of a window set: how many cycles the
/// biggest computer exceeds the smallest (a cheap imbalance signal for
/// logging).
pub fn window_spread(windows: &[RankWindow]) -> Cycles {
    let max = windows.iter().map(|w| w.compute).max().unwrap_or(0);
    let min = windows.iter().map(|w| w.compute).min().unwrap_or(0);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{execute, execute_with, StaticRun};
    use mtb_oskernel::CtxAddr;
    use mtb_workloads::metbench::MetBenchConfig;
    use mtb_workloads::synthetic::SyntheticConfig;

    fn windows(c: &[Cycles]) -> Vec<RankWindow> {
        c.iter()
            .enumerate()
            .map(|(rank, &compute)| RankWindow {
                rank,
                compute,
                sync: 0,
            })
            .collect()
    }

    #[test]
    fn pairs_derive_from_placement() {
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let b = DynamicBalancer::with_defaults(&placement);
        assert_eq!(b.pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn ratio_targets_are_bounded() {
        let b = DynamicBalancer::with_defaults(&[]);
        assert_eq!(b.target_for_ratio(1.0), (4, 4));
        assert_eq!(b.target_for_ratio(1.3), (5, 4));
        assert_eq!(b.target_for_ratio(5.0), (6, 4));
        // Never beyond diff 2.
        let (h, l) = b.target_for_ratio(1e9);
        assert!(h - l <= 2);
    }

    #[test]
    fn single_step_hysteresis() {
        assert_eq!(DynamicBalancer::step_toward(4, 6), 5);
        assert_eq!(DynamicBalancer::step_toward(5, 6), 6);
        assert_eq!(DynamicBalancer::step_toward(6, 4), 5);
        assert_eq!(DynamicBalancer::step_toward(4, 4), 4);
    }

    #[test]
    fn window_spread_measures_max_minus_min() {
        assert_eq!(window_spread(&windows(&[10, 40, 25, 40])), 30);
        assert_eq!(window_spread(&[]), 0);
    }

    #[test]
    fn dynamic_policy_beats_unbalanced_reference_on_metbench() {
        // The headline claim of the future-work section: the automatic
        // policy should recover (most of) the static win without manual
        // tuning.
        let cfg = MetBenchConfig {
            iterations: 30,
            scale: 3e-3,
            ..Default::default()
        };
        let progs = cfg.programs();

        let reference = execute(StaticRun::new(&progs, cfg.placement())).unwrap();

        let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
        let dynamic = execute_with(StaticRun::new(&progs, cfg.placement()), &mut balancer).unwrap();

        assert!(balancer.adjustments() > 0, "policy must have acted");
        assert!(
            (dynamic.total_cycles as f64) < reference.total_cycles as f64 * 0.97,
            "dynamic balancing must beat the reference: {} vs {}",
            dynamic.total_cycles,
            reference.total_cycles
        );
        assert!(dynamic.metrics.imbalance_pct < reference.metrics.imbalance_pct);
    }

    #[test]
    fn policy_never_exceeds_diff_cap() {
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let cfg = MetBenchConfig {
            iterations: 20,
            scale: 1e-3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let mut balancer = DynamicBalancer::with_defaults(&placement);
        let _ = execute_with(StaticRun::new(&progs, placement.clone()), &mut balancer).unwrap();
        let p = balancer.current_priorities();
        assert!(p[0].abs_diff(p[1]) <= 2);
        assert!(p[2].abs_diff(p[3]) <= 2);
    }

    #[test]
    fn audit_reverts_harmful_adjustments() {
        // A balanced application skewed only by OS noise: priorities
        // cannot recover stolen cycles, and penalizing the co-runner makes
        // things worse. The audited policy must end close to where it
        // started and record reverts — and must not blow the runtime up.
        let cfg = SyntheticConfig {
            skew: 1.0,
            base_work: 40_000_000,
            iterations: 10,
            ..Default::default()
        };
        let progs = cfg.programs();
        let noise = mtb_oskernel::noise::interrupt_annoyance(2, 1_500_000, 7_500, 500_000, 50_000);

        let plain =
            execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise.clone())).unwrap();
        let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
        let dynamic = execute_with(
            StaticRun::new(&progs, cfg.placement()).with_noise(noise),
            &mut balancer,
        )
        .unwrap();
        assert!(
            (dynamic.total_cycles as f64) < plain.total_cycles as f64 * 1.10,
            "audited policy must not make noise-imbalance much worse: {} vs {}",
            dynamic.total_cycles,
            plain.total_cycles
        );
    }

    #[test]
    fn audit_state_freezes_pair_after_revert() {
        // Drive the observer by hand: adjustment at epoch 0, worse window
        // at epoch 1 -> revert + freeze.
        let placement: Vec<CtxAddr> = (0..2).map(CtxAddr::from_cpu).collect();
        let mut b = DynamicBalancer::with_defaults(&placement);
        let mut machine = mtb_oskernel::Machine::new(
            mtb_smtsim::chip::build_cores(1, false),
            mtb_oskernel::KernelConfig::patched(),
        );
        machine.spawn(0, "P1", placement[0]).unwrap();
        machine.spawn(1, "P2", placement[1]).unwrap();

        // Epoch 0: rank 0 looks heavy -> boost it.
        b.on_epoch(0, &windows(&[200, 100]), &mut machine);
        assert_eq!(b.current_priorities(), &[5, 4]);
        // Epoch 1: the pair bottleneck got much worse -> revert.
        b.on_epoch(1, &windows(&[400, 390]), &mut machine);
        assert_eq!(b.current_priorities(), &[4, 4], "revert to previous");
        assert_eq!(b.reverts(), 1);
        // Frozen: further imbalance is ignored during cool-off.
        b.on_epoch(2, &windows(&[300, 100]), &mut machine);
        assert_eq!(b.current_priorities(), &[4, 4]);
    }

    #[test]
    fn opposing_adjustments_respect_cooloff() {
        // A ratio that collapses right after a boost must not produce an
        // immediate de-boost: the opposing step waits out the cool-off.
        let placement: Vec<CtxAddr> = (0..2).map(CtxAddr::from_cpu).collect();
        let mut b = DynamicBalancer::with_defaults(&placement);
        let mut machine = mtb_oskernel::Machine::new(
            mtb_smtsim::chip::build_cores(1, false),
            mtb_oskernel::KernelConfig::patched(),
        );
        machine.spawn(0, "P1", placement[0]).unwrap();
        machine.spawn(1, "P2", placement[1]).unwrap();

        b.on_epoch(0, &windows(&[200, 100]), &mut machine);
        assert_eq!(b.current_priorities(), &[5, 4]);
        // Balanced from here on: the (4, 4) target is an opposing step.
        for epoch in 1..8 {
            b.on_epoch(epoch, &windows(&[100, 100]), &mut machine);
            assert_eq!(
                b.current_priorities(),
                &[5, 4],
                "opposing step blocked during cool-off (epoch {epoch})"
            );
        }
        b.on_epoch(8, &windows(&[100, 100]), &mut machine);
        assert_eq!(
            b.current_priorities(),
            &[4, 4],
            "after the cool-off the de-boost is allowed"
        );
        assert_eq!(b.reverts(), 0, "hysteresis block is not an audit revert");
    }

    #[test]
    fn two_level_controller_remaps_then_tunes() {
        // Both heavy ranks start on one core: priorities alone cannot fix
        // a core-level imbalance, so level 1 must separate them and level
        // 2 must then recover the static priority win.
        let progs = MetBenchConfig {
            iterations: 30,
            scale: 3e-3,
            heavy_ranks: vec![2, 3],
            ..Default::default()
        }
        .programs();
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();

        let reference = execute(StaticRun::new(&progs, placement.clone())).unwrap();
        let mut ctl = TwoLevelController::with_defaults(&placement);
        let dynamic = execute_with(StaticRun::new(&progs, placement), &mut ctl).unwrap();

        assert_eq!(ctl.remaps(), 1, "one corrective remap");
        assert!(ctl.adjustments() > 0, "level 2 retunes the new pairs");
        assert!(
            (dynamic.total_cycles as f64) < reference.total_cycles as f64 * 0.92,
            "two-level control must beat the reference clearly: {} vs {}",
            dynamic.total_cycles,
            reference.total_cycles
        );
    }

    #[test]
    fn pinned_controller_never_remaps() {
        let progs = MetBenchConfig {
            iterations: 20,
            scale: 1e-3,
            heavy_ranks: vec![2, 3],
            ..Default::default()
        }
        .programs();
        let placement: Vec<CtxAddr> = (0..4).map(CtxAddr::from_cpu).collect();
        let cfg = ControllerConfig {
            pinned: true,
            ..Default::default()
        };
        let mut ctl = TwoLevelController::new(&placement, cfg);
        let _ = execute_with(StaticRun::new(&progs, placement), &mut ctl).unwrap();
        assert_eq!(ctl.remaps(), 0, "pinned placements are never migrated");
    }

    #[cfg(feature = "verify")]
    #[test]
    fn model_driven_controller_stays_within_the_priority_envelope() {
        let cfg = MetBenchConfig {
            iterations: 20,
            scale: 1e-3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let mut ctl =
            TwoLevelController::for_programs(&progs, &cfg.placement(), ControllerConfig::default());
        let _ = execute_with(StaticRun::new(&progs, cfg.placement()), &mut ctl).unwrap();
        assert!(ctl.adjustments() > 0, "the model-guided policy must act");
        let p = ctl.current_priorities();
        assert!(p[0].abs_diff(p[1]) <= 2, "{p:?}");
        assert!(p[2].abs_diff(p[3]) <= 2, "{p:?}");
        assert!(p.iter().all(|&v| (1..=6).contains(&v)), "{p:?}");
    }

    #[cfg(feature = "verify")]
    #[test]
    fn controller_lint_flags_lag_and_pinned_remap() {
        use mtb_verify::{codes, Severity};
        let cfg = ControllerConfig::default();
        assert!(cfg.lint(Some(100)).diagnostics.is_empty());

        // A 10-epoch window cannot converge inside a 12-epoch app.
        let laggy = ControllerConfig {
            window: 10,
            ..Default::default()
        };
        let r = laggy.lint(Some(12));
        assert!(r.has_code(codes::CTRL_LAG), "{r}");
        assert!(
            laggy.lint(None).diagnostics.is_empty(),
            "no horizon, no lag"
        );

        let zero = ControllerConfig {
            window: 0,
            ..Default::default()
        };
        let r = zero.lint(None);
        assert!(r.has_code(codes::CTRL_LAG), "{r}");
        assert_eq!(r.count(Severity::Error), 1, "{r}");

        let pinned = ControllerConfig {
            pinned: true,
            ..Default::default()
        };
        let r = pinned.lint(Some(100));
        assert!(r.has_code(codes::CTRL_REMAP_PINNED), "{r}");
        let pinned_ok = ControllerConfig {
            pinned: true,
            max_remaps: 0,
            ..Default::default()
        };
        assert!(
            pinned_ok.lint(Some(100)).diagnostics.is_empty(),
            "pinned with level 1 disabled is consistent"
        );
    }

    #[cfg(feature = "verify")]
    #[test]
    fn config_lint_flags_unsafe_tunables() {
        use mtb_verify::{codes, Severity};
        assert!(DynamicConfig::default().lint().diagnostics.is_empty());
        let bad = DynamicConfig {
            max_diff: 5,
            threshold: 0.8,
            strong_threshold: 0.5,
            relax_threshold: 0.9,
            ewma: 1.5,
            revert_tolerance: -0.1,
            cooloff: 0,
        };
        let r = bad.lint();
        assert_eq!(r.count(Severity::Error), 1, "{r}");
        assert_eq!(r.count(Severity::Warning), 6, "{r}");
        for code in [
            codes::CTRL_DIFF,
            codes::CTRL_EWMA,
            codes::CTRL_THRASH,
            codes::CTRL_REVERT,
        ] {
            assert!(r.has_code(code), "missing {code}: {r}");
        }
        assert!(!r.has_code(codes::PRIO_DIFF), "{r}");
    }
}
