//! The balancing runner.
//!
//! Wraps the system simulator with the balancing configuration surface the
//! paper describes: a rank-to-context mapping plus per-rank hardware
//! priorities (static balancing, Section VII), optionally driven by a
//! feedback observer (dynamic balancing, Section VIII).

use crate::policy::{apply_priorities, PrioritySetting};
use mtb_mpisim::engine::{Engine, Observer, RunResult, SimConfig};
use mtb_mpisim::program::Program;
use mtb_oskernel::{CtxAddr, KernelConfig, NoiseSource, PriorityError, Topology, WaitPolicy};
use mtb_smtsim::chip::Fidelity;
use mtb_smtsim::perfmodel::MesoConfig;
use mtb_smtsim::CoreConfig;

/// A fully-specified balancing experiment.
pub struct StaticRun<'a> {
    /// The rank programs.
    pub programs: &'a [Program],
    /// Rank -> hardware context mapping.
    pub placement: Vec<CtxAddr>,
    /// Per-rank priority settings (padded with `Default` if short).
    pub priorities: Vec<PrioritySetting>,
    /// Kernel flavour (the paper's experiments need `Patched`).
    pub kernel: KernelConfig,
    /// Extrinsic noise sources.
    pub noise: Vec<NoiseSource>,
    /// Core model selection and configuration (mesoscale by default).
    pub fidelity: Fidelity,
    /// Number of cores (default 2, the paper's machine).
    pub cores: usize,
    /// Core-to-node grouping (single node by default).
    pub topology: Topology,
    /// How ranks wait in MPI calls (stock-MPICH spinning by default).
    pub wait_policy: WaitPolicy,
}

impl<'a> StaticRun<'a> {
    /// A run with default (MEDIUM) priorities on a patched kernel.
    pub fn new(programs: &'a [Program], placement: Vec<CtxAddr>) -> StaticRun<'a> {
        StaticRun {
            programs,
            placement,
            priorities: Vec::new(),
            kernel: KernelConfig::patched(),
            noise: Vec::new(),
            fidelity: Fidelity::default(),
            cores: 2,
            topology: Topology::single_node(),
            wait_policy: WaitPolicy::default(),
        }
    }

    /// Set the per-rank priorities.
    pub fn with_priorities(mut self, p: Vec<PrioritySetting>) -> Self {
        self.priorities = p;
        self
    }

    /// Set the kernel flavour.
    pub fn with_kernel(mut self, k: KernelConfig) -> Self {
        self.kernel = k;
        self
    }

    /// Add noise sources.
    pub fn with_noise(mut self, n: Vec<NoiseSource>) -> Self {
        self.noise = n;
        self
    }

    /// Select the cycle-level core model at default configuration.
    pub fn cycle_accurate(mut self) -> Self {
        self.fidelity = Fidelity::Cycle(CoreConfig::default());
        self
    }

    /// Use a custom mesoscale configuration (e.g. the EXT-5 share-law
    /// ablation).
    pub fn with_meso(mut self, cfg: MesoConfig) -> Self {
        self.fidelity = Fidelity::Meso(cfg);
        self
    }

    /// Run on a cluster: `nodes` nodes of `cores_per_node` SMT cores each
    /// (cross-node messages pay network latency).
    pub fn on_cluster(mut self, nodes: usize, cores_per_node: usize) -> Self {
        self.cores = nodes * cores_per_node;
        self.topology = Topology::cluster(cores_per_node);
        self
    }

    /// Choose how ranks wait inside MPI calls (Section VI's discussion:
    /// spin at own priority, spin at a lowered priority, or block).
    pub fn with_wait_policy(mut self, p: WaitPolicy) -> Self {
        self.wait_policy = p;
        self
    }

    fn build_engine(&self) -> Engine {
        let mut cfg = SimConfig::power5(self.programs.len());
        cfg.cores = self.cores;
        cfg.topology = self.topology;
        cfg.placement = self.placement.clone();
        cfg.kernel = self.kernel;
        cfg.noise = self.noise.clone();
        cfg.fidelity = self.fidelity.clone();
        cfg.wait_policy = self.wait_policy;
        if matches!(self.fidelity, Fidelity::Cycle(_)) {
            // The cycle model costs real time per simulated cycle; keep
            // event steps bounded so rate estimates stay fresh.
            cfg.quantum = 50_000;
        }
        Engine::new(self.programs, cfg)
    }
}

/// Execute a static balancing run.
pub fn execute(run: StaticRun<'_>) -> Result<RunResult, PriorityError> {
    let mut engine = run.build_engine();
    let mut settings = run.priorities.clone();
    settings.resize(run.programs.len(), PrioritySetting::Default);
    apply_priorities(engine.machine_mut(), &settings)?;
    Ok(engine.run())
}

/// Execute a run with a feedback observer (e.g.
/// [`crate::dynamic::DynamicBalancer`]).
pub fn execute_with(
    run: StaticRun<'_>,
    observer: &mut dyn Observer,
) -> Result<RunResult, PriorityError> {
    let mut engine = run.build_engine();
    let mut settings = run.priorities.clone();
    settings.resize(run.programs.len(), PrioritySetting::Default);
    apply_priorities(engine.machine_mut(), &settings)?;
    Ok(engine.run_with(observer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtb_workloads::synthetic::SyntheticConfig;

    #[test]
    fn boosting_the_bottleneck_shortens_the_run() {
        // The Figure 1 story end to end: P1 is the bottleneck; give it
        // HIGH priority (its core-mate P2 implicitly loses bandwidth) and
        // the total execution time must drop.
        let cfg = SyntheticConfig {
            base_work: 20_000_000,
            iterations: 2,
            ..Default::default()
        };
        let progs = cfg.programs();

        let base = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
        // A bounded boost (diff 1): P1 speeds up, P2 slows but has slack.
        let boosted = execute(
            StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
                PrioritySetting::ProcFs(5),
                PrioritySetting::Default,
                PrioritySetting::Default,
                PrioritySetting::Default,
            ]),
        )
        .unwrap();
        assert!(
            boosted.total_cycles < base.total_cycles,
            "boosting the bottleneck must help: {} vs {}",
            boosted.total_cycles,
            base.total_cycles
        );
        assert!(boosted.metrics.imbalance_pct < base.metrics.imbalance_pct);
    }

    #[test]
    fn overboosting_inverts_the_imbalance() {
        // The MetBench case-D phenomenon: penalize the co-runner too much
        // and it becomes the new bottleneck.
        let cfg = SyntheticConfig {
            base_work: 20_000_000,
            iterations: 2,
            skew: 1.3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let base = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
        let inverted = execute(
            StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
                PrioritySetting::ProcFs(6),
                PrioritySetting::ProcFs(2), // crush P2 (priority difference 4)
                PrioritySetting::Default,
                PrioritySetting::Default,
            ]),
        )
        .unwrap();
        // P2 now dominates the run.
        let p2 = &inverted.metrics.procs[1];
        assert!(p2.sync_pct < 5.0, "P2 must be the new bottleneck: {p2:?}");
        assert!(inverted.total_cycles > base.total_cycles);
    }

    #[test]
    fn priorities_are_rejected_on_vanilla_kernels() {
        let cfg = SyntheticConfig::tiny();
        let progs = cfg.programs();
        let res = execute(
            StaticRun::new(&progs, cfg.placement())
                .with_kernel(KernelConfig::vanilla())
                .with_priorities(vec![PrioritySetting::ProcFs(6)]),
        );
        assert!(res.is_err(), "procfs needs the patch");
    }
}
