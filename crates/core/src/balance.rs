//! The balancing runner.
//!
//! Wraps the system simulator with the balancing configuration surface the
//! paper describes: a rank-to-context mapping plus per-rank hardware
//! priorities (static balancing, Section VII), optionally driven by a
//! feedback observer (dynamic balancing, Section VIII).

use crate::policy::{apply_priorities, PrioritySetting};
use mtb_mpisim::engine::{Engine, EngineState, Observer, RunResult, SimConfig, SimError, Stepping};
use mtb_mpisim::program::Program;
use mtb_oskernel::{
    CtxAddr, KernelConfig, NoiseSource, PriorityError, Segmentation, Topology, WaitPolicy,
};
use mtb_smtsim::chip::Fidelity;
use mtb_smtsim::perfmodel::MesoConfig;
use mtb_smtsim::CoreConfig;
use std::fmt;

/// Everything that can go wrong executing a balancing run.
#[derive(Debug)]
pub enum BalanceError {
    /// A priority setting the configured kernel interface rejects.
    Priority(PriorityError),
    /// The simulator refused or aborted the run (bad placement,
    /// out-of-range ranks, collective mismatch, deadlock, livelock).
    Sim(SimError),
    /// The pre-flight static analysis found errors before any cycle was
    /// simulated (debug builds with the `verify` feature, the default).
    #[cfg(feature = "verify")]
    Verify(mtb_verify::Report),
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::Priority(e) => write!(f, "{e}"),
            BalanceError::Sim(e) => write!(f, "{e}"),
            #[cfg(feature = "verify")]
            BalanceError::Verify(r) => write!(f, "pre-flight verification failed:\n{r}"),
        }
    }
}

impl std::error::Error for BalanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BalanceError::Priority(e) => Some(e),
            BalanceError::Sim(e) => Some(e),
            #[cfg(feature = "verify")]
            BalanceError::Verify(r) => Some(r),
        }
    }
}

impl From<PriorityError> for BalanceError {
    fn from(e: PriorityError) -> BalanceError {
        BalanceError::Priority(e)
    }
}

impl From<SimError> for BalanceError {
    fn from(e: SimError) -> BalanceError {
        BalanceError::Sim(e)
    }
}

/// A fully-specified balancing experiment.
pub struct StaticRun<'a> {
    /// The rank programs.
    pub programs: &'a [Program],
    /// Rank -> hardware context mapping.
    pub placement: Vec<CtxAddr>,
    /// Per-rank priority settings (padded with `Default` if short).
    pub priorities: Vec<PrioritySetting>,
    /// Kernel flavour (the paper's experiments need `Patched`).
    pub kernel: KernelConfig,
    /// Extrinsic noise sources.
    pub noise: Vec<NoiseSource>,
    /// Core model selection and configuration (mesoscale by default).
    pub fidelity: Fidelity,
    /// Number of cores (default 2, the paper's machine).
    pub cores: usize,
    /// Core-to-node grouping (single node by default).
    pub topology: Topology,
    /// How ranks wait in MPI calls (stock-MPICH spinning by default).
    pub wait_policy: WaitPolicy,
    /// Time-advance strategy ([`Stepping::Auto`] by default: event jumps
    /// for mesoscale fidelity, quantum stepping for cycle fidelity).
    pub stepping: Stepping,
    /// Intra-run worker threads for machine stepping (default 1). Each
    /// engine event window is one *epoch*: shards step privately to the
    /// window's deterministic merge point, then the coordinator merges
    /// their accounting. Permits are acquired per epoch and released
    /// after it, and results are bit-identical at any setting, so this
    /// is deliberately excluded from config/record hashing.
    pub threads: usize,
    /// Offer a checkpoint to the sink every N engine events (`None`
    /// disables checkpointing). Pure persistence knob: the event
    /// trajectory is identical whether or not checkpoints are taken, so
    /// this is excluded from config/record hashing just like `threads`.
    pub checkpoint_every: Option<u64>,
    /// How the machine segments epochs at noise boundaries (the event
    /// calendar by default). Results are bit-identical under either
    /// strategy, so this is excluded from config/record hashing just
    /// like `threads`; the reference exists for differential suites and
    /// the kernel-path benchmarks.
    pub segmentation: Segmentation,
}

impl<'a> StaticRun<'a> {
    /// A run with default (MEDIUM) priorities on a patched kernel.
    pub fn new(programs: &'a [Program], placement: Vec<CtxAddr>) -> StaticRun<'a> {
        StaticRun {
            programs,
            placement,
            priorities: Vec::new(),
            kernel: KernelConfig::patched(),
            noise: Vec::new(),
            fidelity: Fidelity::default(),
            cores: 2,
            topology: Topology::single_node(),
            wait_policy: WaitPolicy::default(),
            stepping: Stepping::default(),
            threads: 1,
            checkpoint_every: None,
            segmentation: Segmentation::default(),
        }
    }

    /// Set the per-rank priorities.
    pub fn with_priorities(mut self, p: Vec<PrioritySetting>) -> Self {
        self.priorities = p;
        self
    }

    /// Set the kernel flavour.
    pub fn with_kernel(mut self, k: KernelConfig) -> Self {
        self.kernel = k;
        self
    }

    /// Add noise sources.
    pub fn with_noise(mut self, n: Vec<NoiseSource>) -> Self {
        self.noise = n;
        self
    }

    /// Select the cycle-level core model at default configuration.
    pub fn cycle_accurate(mut self) -> Self {
        self.fidelity = Fidelity::Cycle(CoreConfig::default());
        self
    }

    /// Use a custom mesoscale configuration (e.g. the EXT-5 share-law
    /// ablation).
    pub fn with_meso(mut self, cfg: MesoConfig) -> Self {
        self.fidelity = Fidelity::Meso(cfg);
        self
    }

    /// Run on a cluster: `nodes` nodes of `cores_per_node` SMT cores each
    /// (cross-node messages pay network latency).
    pub fn on_cluster(mut self, nodes: usize, cores_per_node: usize) -> Self {
        self.cores = nodes * cores_per_node;
        self.topology = Topology::cluster(cores_per_node);
        self
    }

    /// Choose how ranks wait inside MPI calls (Section VI's discussion:
    /// spin at own priority, spin at a lowered priority, or block).
    pub fn with_wait_policy(mut self, p: WaitPolicy) -> Self {
        self.wait_policy = p;
        self
    }

    /// Override the engine's time-advance strategy (the benchmark layer
    /// uses [`Stepping::Quantum`] as its reference mode).
    pub fn with_stepping(mut self, s: Stepping) -> Self {
        self.stepping = s;
        self
    }

    /// Request intra-run worker threads for machine stepping (drawn from
    /// the global permit budget; the grant may be smaller). Pure
    /// wall-clock knob: results are bit-identical at any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Offer a checkpoint to the sink every `n` engine events when run
    /// through [`execute_chunked`]. Does not change results — only how
    /// often the current state is offered for persistence.
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n.max(1));
        self
    }

    /// Choose the machine's epoch segmentation strategy. Pure wall-clock
    /// knob: results are bit-identical under either strategy.
    pub fn with_segmentation(mut self, s: Segmentation) -> Self {
        self.segmentation = s;
        self
    }

    fn build_engine(&self) -> Result<Engine, SimError> {
        let mut cfg = SimConfig::power5(self.programs.len());
        cfg.cores = self.cores;
        cfg.topology = self.topology;
        cfg.placement = self.placement.clone();
        cfg.kernel = self.kernel;
        cfg.noise = self.noise.clone();
        cfg.fidelity = self.fidelity.clone();
        cfg.wait_policy = self.wait_policy;
        cfg.stepping = self.stepping;
        cfg.threads = self.threads;
        cfg.segmentation = self.segmentation;
        if matches!(self.fidelity, Fidelity::Cycle(_)) {
            // The cycle model costs real time per simulated cycle; keep
            // event steps bounded so rate estimates stay fresh.
            cfg.quantum = 50_000;
        }
        Engine::try_new(self.programs, cfg)
    }

    /// The run expressed as a `mtb-verify` case for pre-flight linting.
    #[cfg(feature = "verify")]
    pub fn as_case_spec(&self) -> mtb_verify::CaseSpec {
        let mut priorities: Vec<mtb_verify::PrioritySpec> = self
            .priorities
            .iter()
            .map(|p| match *p {
                PrioritySetting::Default => mtb_verify::PrioritySpec::Default,
                PrioritySetting::ProcFs(v) => mtb_verify::PrioritySpec::ProcFs(v),
                PrioritySetting::OrNop(v, lvl) => mtb_verify::PrioritySpec::OrNop(v, lvl),
            })
            .collect();
        priorities.resize(self.programs.len(), mtb_verify::PrioritySpec::Default);
        mtb_verify::CaseSpec {
            name: "run".into(),
            placement: self.placement.clone(),
            priorities,
            flavour: self.kernel.flavour,
        }
    }

    /// Static analysis of the run (communication graph + priority
    /// configuration), independent of whether pre-flight is active.
    #[cfg(feature = "verify")]
    pub fn verify(&self) -> mtb_verify::Report {
        mtb_verify::verify(self.programs, &self.as_case_spec())
    }
}

/// Pre-flight static analysis: in debug builds (with the default
/// `verify` feature) refuse runs the analyzer can prove broken before a
/// single cycle is simulated. Warnings (e.g. predicted inversions —
/// experiments reproduce those on purpose) never block.
#[cfg(feature = "verify")]
fn preflight(run: &StaticRun<'_>) -> Result<(), BalanceError> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    let report = run.verify();
    if report.has_errors() {
        return Err(BalanceError::Verify(report));
    }
    Ok(())
}

#[cfg(not(feature = "verify"))]
fn preflight(_run: &StaticRun<'_>) -> Result<(), BalanceError> {
    Ok(())
}

/// Build the engine for a run with priorities applied but no events
/// stepped — the entry point for resumable/chunked execution and for the
/// drift bisector, which steps engines in lockstep itself.
pub fn prepare(run: &StaticRun<'_>) -> Result<Engine, BalanceError> {
    preflight(run)?;
    let mut engine = run.build_engine()?;
    let mut settings = run.priorities.clone();
    settings.resize(run.programs.len(), PrioritySetting::Default);
    apply_priorities(engine.machine_mut(), &settings)?;
    Ok(engine)
}

/// Execute a static balancing run.
pub fn execute(run: StaticRun<'_>) -> Result<RunResult, BalanceError> {
    let engine = prepare(&run)?;
    engine.try_run().map_err(BalanceError::Sim)
}

/// Execute a run with a feedback observer (e.g.
/// [`crate::dynamic::DynamicBalancer`]).
pub fn execute_with(
    run: StaticRun<'_>,
    observer: &mut dyn Observer,
) -> Result<RunResult, BalanceError> {
    let engine = prepare(&run)?;
    engine.try_run_with(observer).map_err(BalanceError::Sim)
}

/// Receives the engine each time a checkpoint boundary is crossed during
/// [`execute_chunked`]. The sink decides what to do with it (the
/// benchmark harness serializes via `mtb-snap`; this crate stays free of
/// any serialization dependency).
pub trait CheckpointSink {
    /// Called with the engine paused at an event boundary. `events` is
    /// the engine's event count at this boundary.
    fn on_checkpoint(&mut self, events: u64, engine: &Engine);
}

/// A sink that drops every checkpoint offer.
pub struct NoCheckpoint;

impl CheckpointSink for NoCheckpoint {
    fn on_checkpoint(&mut self, _events: u64, _engine: &Engine) {}
}

/// Execute a run in event chunks, offering the paused engine to `sink`
/// every `checkpoint_every` events, optionally resuming from a
/// previously captured state.
///
/// Chunked stepping visits bit-for-bit the same states as a straight
/// run, so the result is identical to [`execute_with`] for any chunk
/// size, any resume point, and any sink. Under epoch-based sharded
/// stepping every checkpoint boundary is also a forced merge point —
/// shards never hold private state across a boundary — so a snapshot
/// taken here restores identically at any thread count.
pub fn execute_chunked(
    run: StaticRun<'_>,
    resume: Option<&EngineState>,
    observer: &mut dyn Observer,
    sink: &mut dyn CheckpointSink,
) -> Result<RunResult, BalanceError> {
    let every = run.checkpoint_every;
    let mut engine = prepare(&run)?;
    if let Some(state) = resume {
        engine.restore_state(state)?;
    }
    let chunk = every.unwrap_or(u64::MAX).max(1);
    loop {
        let done = engine.step_events(observer, chunk)?;
        if done {
            break;
        }
        if every.is_some() {
            sink.on_checkpoint(engine.events(), &engine);
        }
    }
    Ok(engine.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtb_workloads::synthetic::SyntheticConfig;

    #[test]
    fn boosting_the_bottleneck_shortens_the_run() {
        // The Figure 1 story end to end: P1 is the bottleneck; give it
        // HIGH priority (its core-mate P2 implicitly loses bandwidth) and
        // the total execution time must drop.
        let cfg = SyntheticConfig {
            base_work: 20_000_000,
            iterations: 2,
            ..Default::default()
        };
        let progs = cfg.programs();

        let base = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
        // A bounded boost (diff 1): P1 speeds up, P2 slows but has slack.
        let boosted = execute(
            StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
                PrioritySetting::ProcFs(5),
                PrioritySetting::Default,
                PrioritySetting::Default,
                PrioritySetting::Default,
            ]),
        )
        .unwrap();
        assert!(
            boosted.total_cycles < base.total_cycles,
            "boosting the bottleneck must help: {} vs {}",
            boosted.total_cycles,
            base.total_cycles
        );
        assert!(boosted.metrics.imbalance_pct < base.metrics.imbalance_pct);
    }

    #[test]
    fn overboosting_inverts_the_imbalance() {
        // The MetBench case-D phenomenon: penalize the co-runner too much
        // and it becomes the new bottleneck.
        let cfg = SyntheticConfig {
            base_work: 20_000_000,
            iterations: 2,
            skew: 1.3,
            ..Default::default()
        };
        let progs = cfg.programs();
        let base = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
        let inverted = execute(
            StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
                PrioritySetting::ProcFs(6),
                PrioritySetting::ProcFs(2), // crush P2 (priority difference 4)
                PrioritySetting::Default,
                PrioritySetting::Default,
            ]),
        )
        .unwrap();
        // P2 now dominates the run.
        let p2 = &inverted.metrics.procs[1];
        assert!(p2.sync_pct < 5.0, "P2 must be the new bottleneck: {p2:?}");
        assert!(inverted.total_cycles > base.total_cycles);
    }

    #[cfg(feature = "verify")]
    #[test]
    fn preflight_rejects_deadlocking_programs_before_simulation() {
        use mtb_mpisim::ProgramBuilder;
        // Two ranks each blocking on a receive the other never sends:
        // the analyzer must refuse this in debug; in release the engine
        // itself reports the deadlock. Either way: a structured error.
        let progs = vec![
            ProgramBuilder::new().recv(1, 1).build(),
            ProgramBuilder::new().recv(0, 2).build(),
        ];
        let placement = vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(1)];
        let res = execute(StaticRun::new(&progs, placement));
        match res {
            // Preflight only runs in debug builds; there the analyzer
            // must refuse before the engine is even constructed.
            Err(BalanceError::Verify(report)) if cfg!(debug_assertions) => {
                assert!(report.has_errors(), "{report}");
            }
            Err(BalanceError::Sim(_)) if !cfg!(debug_assertions) => {}
            other => panic!(
                "expected a verify (debug) or sim (release) error, got {:?}",
                other.map(|r| r.total_cycles)
            ),
        }
    }

    #[cfg(feature = "verify")]
    #[test]
    fn preflight_warnings_do_not_block_execution() {
        // Overboosting (difference 4) draws PRIO-DIFF / PRIO-INVERT
        // warnings, but experiments reproduce inversions on purpose —
        // the run must still execute.
        let cfg = SyntheticConfig::tiny();
        let progs = cfg.programs();
        let run = StaticRun::new(&progs, cfg.placement())
            .with_priorities(vec![PrioritySetting::ProcFs(6), PrioritySetting::ProcFs(2)]);
        let report = run.verify();
        assert!(!report.has_errors(), "{report}");
        assert!(execute(run).is_ok());
    }

    #[test]
    fn priorities_are_rejected_on_vanilla_kernels() {
        let cfg = SyntheticConfig::tiny();
        let progs = cfg.programs();
        let res = execute(
            StaticRun::new(&progs, cfg.placement())
                .with_kernel(KernelConfig::vanilla())
                .with_priorities(vec![PrioritySetting::ProcFs(6)]),
        );
        assert!(res.is_err(), "procfs needs the patch");
    }
}
