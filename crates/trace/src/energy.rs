//! Energy accounting.
//!
//! The paper's introduction motivates MT processors by their
//! "performance/energy consumption and performance/cost ratios"; this
//! module makes that dimension measurable. A simple first-order model:
//! every core draws a base power while the machine runs; every hardware
//! context draws active power while it executes anything — including an
//! MPI busy-wait, which is exactly why spinning at a synchronization
//! point is costly — and a much smaller idle power once its process has
//! exited; retired instructions add dynamic energy on top.

use crate::metrics::RunMetrics;
use crate::timeline::Timeline;
use crate::{Cycles, NOMINAL_CLOCK_HZ};

/// First-order power/energy parameters (POWER5-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Watts per core, whenever the machine is powered (clock tree,
    /// caches).
    pub core_base_watts: f64,
    /// Watts per hardware context while it executes (compute *or* spin).
    pub ctx_active_watts: f64,
    /// Watts per context while it idles at VERY LOW priority.
    pub ctx_idle_watts: f64,
    /// Nanojoules per retired instruction.
    pub nj_per_instruction: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_base_watts: 15.0,
            ctx_active_watts: 10.0,
            ctx_idle_watts: 1.5,
            nj_per_instruction: 0.5,
        }
    }
}

/// Energy outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total energy to solution, joules.
    pub joules: f64,
    /// Mean power over the run, watts.
    pub avg_watts: f64,
    /// Energy-delay product (J·s) — lower is better on both axes.
    pub edp: f64,
}

/// Compute the energy of a run.
///
/// * `timelines` — per-process activity records (a process is *active*
///   for its whole recorded lifetime: waiting ranks spin);
/// * `retired` — per-process retired instruction counts;
/// * `total_cycles` — run length;
/// * `contexts` — hardware contexts in the machine (2 per core); contexts
///   without a process, and every context after its process exits, idle.
pub fn measure(
    timelines: &[Timeline],
    retired: &[u64],
    total_cycles: Cycles,
    contexts: usize,
    model: &EnergyModel,
) -> EnergyReport {
    let seconds = total_cycles as f64 / NOMINAL_CLOCK_HZ;
    let cores = contexts.div_ceil(2);

    // Per-context active/idle split: a context is active while its
    // process's timeline runs (spin included), idle before/after and when
    // it has no process at all.
    let mut active_s = 0.0;
    for t in timelines {
        active_s += t.duration() as f64 / NOMINAL_CLOCK_HZ;
    }
    let total_ctx_s = contexts as f64 * seconds;
    let idle_s = (total_ctx_s - active_s).max(0.0);

    let instructions: u64 = retired.iter().sum();
    let joules = model.core_base_watts * cores as f64 * seconds
        + model.ctx_active_watts * active_s
        + model.ctx_idle_watts * idle_s
        + model.nj_per_instruction * 1e-9 * instructions as f64;

    EnergyReport {
        joules,
        avg_watts: if seconds > 0.0 { joules / seconds } else { 0.0 },
        edp: joules * seconds,
    }
}

/// Convenience: energy from run metrics plus retired counts (uses the
/// metrics' embedded lifetimes).
pub fn measure_metrics(
    metrics: &RunMetrics,
    timelines: &[Timeline],
    retired: &[u64],
    contexts: usize,
    model: &EnergyModel,
) -> EnergyReport {
    measure(timelines, retired, metrics.exec_cycles, contexts, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcState;
    use crate::timeline::TimelineBuilder;

    fn tl(pid: usize, end: Cycles) -> Timeline {
        TimelineBuilder::new(pid, format!("P{pid}"), 0, ProcState::Compute).finish(end)
    }

    const SEC: Cycles = NOMINAL_CLOCK_HZ as Cycles;

    #[test]
    fn fully_active_machine_draws_full_power() {
        let m = EnergyModel::default();
        let tls = vec![tl(0, SEC), tl(1, SEC), tl(2, SEC), tl(3, SEC)];
        let r = measure(&tls, &[0, 0, 0, 0], SEC, 4, &m);
        // 2 cores base + 4 active contexts, 1 second.
        let expect = 2.0 * m.core_base_watts + 4.0 * m.ctx_active_watts;
        assert!((r.joules - expect).abs() < 1e-9, "{} vs {expect}", r.joules);
        assert!((r.avg_watts - expect).abs() < 1e-9);
    }

    #[test]
    fn early_exits_fall_to_idle_power() {
        let m = EnergyModel::default();
        // One rank runs the whole second; the other exits halfway.
        let tls = vec![tl(0, SEC), tl(1, SEC / 2)];
        let r = measure(&tls, &[0, 0], SEC, 2, &m);
        let expect = m.core_base_watts // one core
            + 1.5 * m.ctx_active_watts
            + 0.5 * m.ctx_idle_watts;
        assert!((r.joules - expect).abs() < 1e-9, "{} vs {expect}", r.joules);
    }

    #[test]
    fn instructions_add_dynamic_energy() {
        let m = EnergyModel::default();
        let tls = vec![tl(0, SEC)];
        let none = measure(&tls, &[0], SEC, 2, &m).joules;
        let some = measure(&tls, &[2_000_000_000], SEC, 2, &m).joules;
        assert!((some - none - 1.0).abs() < 1e-9, "2G inst at 0.5 nJ = 1 J");
    }

    #[test]
    fn edp_penalizes_slow_runs_quadratically_in_time() {
        let m = EnergyModel::default();
        let fast = measure(&[tl(0, SEC)], &[0], SEC, 2, &m);
        let slow = measure(&[tl(0, 2 * SEC)], &[0], 2 * SEC, 2, &m);
        // Same average power, twice the time: 2x energy, 4x EDP.
        assert!((slow.joules / fast.joules - 2.0).abs() < 1e-9);
        assert!((slow.edp / fast.edp - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_run_is_zero_energy() {
        let r = measure(&[], &[], 0, 4, &EnergyModel::default());
        assert_eq!(r.joules, 0.0);
        assert_eq!(r.avg_watts, 0.0);
    }
}
