//! ASCII Gantt rendering of process timelines.
//!
//! The paper's Figures 1-4 are PARAVER screenshots: one horizontal bar per
//! process, time on the x-axis, colors encoding the process state. This
//! module renders the same picture as text, one row per process, using the
//! glyphs defined on [`ProcState`]: `#` compute, `.` sync-wait, `%` comm,
//! `!` interrupt, `i` init, `f` finalize.

use crate::state::ProcState;
use crate::timeline::Timeline;
use crate::Cycles;

/// Rendering options for [`render_gantt`].
#[derive(Debug, Clone)]
pub struct GanttConfig {
    /// Number of character columns used for the time axis.
    pub width: usize,
    /// Render a legend below the chart.
    pub legend: bool,
    /// Optional title above the chart.
    pub title: Option<String>,
    /// Optional time window `[start, end)` to zoom into (the whole trace
    /// when `None`) — the PARAVER-style region inspection.
    pub window: Option<(Cycles, Cycles)>,
}

impl Default for GanttConfig {
    fn default() -> Self {
        GanttConfig {
            width: 100,
            legend: true,
            title: None,
            window: None,
        }
    }
}

impl GanttConfig {
    /// Zoom into `[start, end)`.
    pub fn with_window(mut self, start: Cycles, end: Cycles) -> GanttConfig {
        self.window = Some((start, end));
        self
    }
}

/// Render a set of timelines as an ASCII Gantt chart.
///
/// Each output row is `label |<glyphs>|`; every column represents an equal
/// slice of `[min start, max end)`; the glyph of a column is the state the
/// process was in at the *midpoint* of that slice (blank when the process
/// did not exist at that time).
pub fn render_gantt(timelines: &[Timeline], cfg: &GanttConfig) -> String {
    let mut out = String::new();
    if let Some(t) = &cfg.title {
        out.push_str(t);
        out.push('\n');
    }
    if timelines.is_empty() || cfg.width == 0 {
        out.push_str("(no timelines)\n");
        return out;
    }
    let (t_min, t_max) = cfg.window.unwrap_or_else(|| {
        (
            timelines.iter().map(Timeline::start).min().unwrap_or(0),
            timelines.iter().map(Timeline::end).max().unwrap_or(0),
        )
    });
    let span = t_max.saturating_sub(t_min).max(1);

    let label_w = timelines
        .iter()
        .map(|t| t.label.len())
        .max()
        .unwrap_or(2)
        .max(2);

    for tl in timelines {
        out.push_str(&format!("{:>w$} |", tl.label, w = label_w));
        for col in 0..cfg.width {
            // Midpoint of the column in simulated time.
            let t =
                t_min + ((2 * col as u128 + 1) * span as u128 / (2 * cfg.width as u128)) as Cycles;
            let glyph = tl.state_at(t).map_or(' ', ProcState::glyph);
            out.push(glyph);
        }
        out.push_str("|\n");
    }

    // Time axis.
    out.push_str(&format!("{:>w$} +", "", w = label_w));
    out.push_str(&"-".repeat(cfg.width));
    out.push_str("+\n");
    out.push_str(&format!(
        "{:>w$}  {:<left$}{:>right$}\n",
        "",
        format!("{t_min}"),
        format!("{t_max} cycles"),
        w = label_w,
        left = cfg.width / 2,
        right = cfg.width - cfg.width / 2,
    ));

    if cfg.legend {
        out.push_str("legend:");
        for s in ProcState::ALL {
            if s == ProcState::Idle {
                continue;
            }
            out.push_str(&format!(" {}={}", s.glyph(), s.name()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineBuilder;

    fn two_procs() -> Vec<Timeline> {
        let mut b0 = TimelineBuilder::new(0, "P1", 0, ProcState::Compute);
        b0.enter(ProcState::Sync, 50);
        let t0 = b0.finish(100);
        let b1 = TimelineBuilder::new(1, "P2", 0, ProcState::Compute);
        let t1 = b1.finish(100);
        vec![t0, t1]
    }

    #[test]
    fn renders_one_row_per_process() {
        let s = render_gantt(
            &two_procs(),
            &GanttConfig {
                width: 20,
                legend: false,
                title: None,
                window: None,
            },
        );
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[0].starts_with("P1 |"));
        assert!(rows[1].starts_with("P2 |"));
        // P1: first half compute, second half sync.
        let body: String = rows[0].chars().skip(4).take(20).collect();
        assert_eq!(&body[..10], "##########");
        assert_eq!(&body[10..], "..........");
    }

    #[test]
    fn full_compute_row_is_all_hash() {
        let s = render_gantt(
            &two_procs(),
            &GanttConfig {
                width: 16,
                legend: false,
                title: None,
                window: None,
            },
        );
        let p2 = s.lines().nth(1).unwrap();
        let body: String = p2.chars().skip(4).take(16).collect();
        assert_eq!(body, "#".repeat(16));
    }

    #[test]
    fn legend_and_title_render_when_requested() {
        let cfg = GanttConfig {
            width: 10,
            legend: true,
            title: Some("Figure 1".into()),
            window: None,
        };
        let s = render_gantt(&two_procs(), &cfg);
        assert!(s.starts_with("Figure 1\n"));
        assert!(s.contains("legend:"));
        assert!(s.contains("#=compute"));
    }

    #[test]
    fn empty_input_does_not_panic() {
        let s = render_gantt(&[], &GanttConfig::default());
        assert!(s.contains("(no timelines)"));
    }

    #[test]
    fn rows_have_uniform_width() {
        let s = render_gantt(
            &two_procs(),
            &GanttConfig {
                width: 33,
                legend: false,
                title: None,
                window: None,
            },
        );
        let lens: Vec<usize> = s.lines().take(3).map(|l| l.chars().count()).collect();
        assert_eq!(lens[0], lens[1]);
        assert_eq!(lens[1], lens[2]);
    }

    #[test]
    fn window_zooms_into_a_region() {
        // P1 computes 0..50, syncs 50..100. Zoom into the sync half.
        let cfg = GanttConfig {
            width: 10,
            legend: false,
            title: None,
            window: Some((50, 100)),
        };
        let s = render_gantt(&two_procs(), &cfg);
        let p1 = s.lines().next().unwrap();
        let body: String = p1.chars().skip(4).take(10).collect();
        assert_eq!(body, "..........", "zoomed view shows only sync: {body}");
        assert!(s.contains("50"), "axis shows the window start");
    }

    #[test]
    fn zero_width_is_handled() {
        let s = render_gantt(
            &two_procs(),
            &GanttConfig {
                width: 0,
                legend: false,
                title: None,
                window: None,
            },
        );
        assert!(s.contains("(no timelines)"));
    }
}
