//! Fixed-width text tables in the style of the paper's Tables IV-VI.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width table builder.
///
/// ```
/// use mtb_trace::table::Table;
/// let mut t = Table::new(&["Test", "Proc", "Exec. Time"]);
/// t.row(&["A", "P1", "81.64s"]);
/// t.row(&["B", "P2", "76.98s"]);
/// let s = t.render();
/// assert!(s.contains("81.64s"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// Create a table with the given column headers. All columns default to
    /// right alignment except the first, which is left-aligned.
    pub fn new(headers: &[&str]) -> Table {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Set a caption rendered above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Override column alignments (must match the header count).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row. Shorter rows are padded with empty cells; longer rows
    /// are a programming error.
    pub fn row(&mut self, cells: &[&str]) {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        let mut r: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Append a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert!(cells.len() <= self.headers.len());
        let mut r = cells;
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Append a horizontal separator line.
    pub fn separator(&mut self) {
        self.rows.push(Vec::new()); // empty row encodes a separator
    }

    /// Number of data rows (separators excluded).
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render to a `String`.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let sep_line = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        let fmt_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            out.push('|');
            for i in 0..ncols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, " {:<w$} |", cell, w = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, " {:>w$} |", cell, w = widths[i]);
                    }
                }
            }
            out.push('\n');
        };

        sep_line(&mut out);
        fmt_row(&mut out, &self.headers, &vec![Align::Left; ncols]);
        sep_line(&mut out);
        for r in &self.rows {
            if r.is_empty() {
                sep_line(&mut out);
            } else {
                fmt_row(&mut out, r, &self.aligns);
            }
        }
        sep_line(&mut out);
        out
    }
}

/// Format a float with two decimals, the paper's table convention.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Format seconds in the paper's `81.64s` style.
pub fn secs(v: f64) -> String {
    format!("{v:.2}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = Table::new(&["Test", "Exec"]);
        t.row(&["A", "81.64s"]);
        t.row(&["B", "76.98s"]);
        let s = t.render();
        assert!(s.contains("| Test |"));
        assert!(s.contains("| A    | 81.64s |"));
        assert!(s.contains("76.98s"));
    }

    #[test]
    fn columns_expand_to_widest_cell() {
        let mut t = Table::new(&["x"]);
        t.row(&["a-very-long-cell"]);
        let s = t.render();
        for line in s.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(line.chars().count(), "| a-very-long-cell |".chars().count());
        }
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only-one"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn long_rows_panic() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn separators_render_as_lines() {
        let mut t = Table::new(&["a"]);
        t.row(&["1"]);
        t.separator();
        t.row(&["2"]);
        let s = t.render();
        // header top + header bottom + middle separator + table bottom
        let seps = s.lines().filter(|l| l.starts_with('+')).count();
        assert_eq!(seps, 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn title_renders_above() {
        let t = Table::new(&["a"]).with_title("TABLE IV");
        assert!(t.render().starts_with("TABLE IV\n"));
        assert!(t.is_empty());
    }

    #[test]
    fn number_formatting_helpers() {
        assert_eq!(f2(1.005), "1.00"); // bankers-ish rounding of format!
        assert_eq!(secs(81.639), "81.64s");
        assert_eq!(pct(75.694), "75.69");
    }

    #[test]
    fn alignment_can_be_overridden() {
        let mut t = Table::new(&["n", "l"]).with_aligns(&[Align::Right, Align::Left]);
        t.row(&["1", "x"]);
        let s = t.render();
        assert!(s.contains("| 1 | x |"));
    }
}
