//! Descriptive statistics over trace data.
//!
//! SIESTA-style applications vary per iteration, so single numbers hide
//! the story: this module summarizes distributions (mean/percentiles/
//! histograms) of per-interval durations and compares two runs rank by
//! rank — the ASCII cousin of the analyses PARAVER is used for in the
//! paper.

use crate::state::ProcState;
use crate::timeline::Timeline;
use crate::Cycles;

/// Summary statistics of a sample of durations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: Cycles,
    /// Median (p50).
    pub p50: Cycles,
    /// 95th percentile.
    pub p95: Cycles,
    /// Maximum.
    pub max: Cycles,
    /// Coefficient of variation (stddev / mean); 0 for constant samples.
    pub cv: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(samples: &[Cycles]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut s = samples.to_vec();
        s.sort_unstable();
        let count = s.len();
        let sum: u128 = s.iter().map(|&x| u128::from(x)).sum();
        let mean = sum as f64 / count as f64;
        let var = s
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        let pct = |p: f64| s[(((count - 1) as f64) * p).round() as usize];
        Some(Summary {
            count,
            mean,
            min: s[0],
            p50: pct(0.5),
            p95: pct(0.95),
            max: s[count - 1],
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        })
    }
}

/// Durations of every interval of `state` in a timeline — e.g. the
/// per-iteration compute times of a rank (one `Compute` interval per
/// iteration in barrier-synchronized programs).
pub fn interval_durations(t: &Timeline, state: ProcState) -> Vec<Cycles> {
    t.intervals()
        .iter()
        .filter(|iv| iv.state == state)
        .map(|iv| iv.len())
        .collect()
}

/// Render a sample as a fixed-width ASCII histogram with `bins` bins.
pub fn histogram(samples: &[Cycles], bins: usize, width: usize) -> String {
    if samples.is_empty() || bins == 0 {
        return "(no samples)\n".to_string();
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let span = (max - min).max(1);
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let b = (((s - min) as u128 * bins as u128) / (span as u128 + 1)) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as Cycles / bins as Cycles;
        let hi = min + span * (i as Cycles + 1) / bins as Cycles;
        let bar = "#".repeat(c * width / peak);
        out.push_str(&format!("{lo:>12}..{hi:<12} |{bar:<width$}| {c}\n"));
    }
    out
}

/// Per-rank comparison of two runs' timelines: (label, compute delta %,
/// sync delta %) — positive = more in `b` than `a`.
pub fn compare_runs(a: &[Timeline], b: &[Timeline]) -> Vec<(String, f64, f64)> {
    a.iter()
        .zip(b)
        .map(|(ta, tb)| {
            let pct_delta = |xa: Cycles, xb: Cycles| {
                if xa == 0 {
                    if xb == 0 {
                        0.0
                    } else {
                        100.0
                    }
                } else {
                    100.0 * (xb as f64 - xa as f64) / xa as f64
                }
            };
            (
                ta.label.clone(),
                pct_delta(
                    ta.time_where(ProcState::is_useful),
                    tb.time_where(ProcState::is_useful),
                ),
                pct_delta(
                    ta.time_where(ProcState::is_waiting),
                    tb.time_where(ProcState::is_waiting),
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineBuilder;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[10, 20, 30, 40, 50]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 30.0).abs() < 1e-9);
        assert_eq!(s.min, 10);
        assert_eq!(s.p50, 30);
        assert_eq!(s.max, 50);
        assert!(s.cv > 0.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn constant_sample_has_zero_cv() {
        let s = Summary::of(&[7, 7, 7]).unwrap();
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.p95, 7);
    }

    #[test]
    fn interval_durations_extract_per_iteration_computes() {
        let mut b = TimelineBuilder::new(0, "P1", 0, ProcState::Compute);
        b.enter(ProcState::Sync, 100);
        b.enter(ProcState::Compute, 150);
        b.enter(ProcState::Sync, 350);
        let t = b.finish(400);
        assert_eq!(interval_durations(&t, ProcState::Compute), vec![100, 200]);
        assert_eq!(interval_durations(&t, ProcState::Sync), vec![50, 50]);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let samples = vec![1, 2, 3, 10, 11, 12, 100];
        let h = histogram(&samples, 4, 20);
        let total: usize = h
            .lines()
            .filter_map(|l| l.rsplit(' ').next()?.parse::<usize>().ok())
            .sum();
        assert_eq!(total, samples.len());
        assert_eq!(h.lines().count(), 4);
    }

    #[test]
    fn histogram_handles_degenerate_input() {
        assert!(histogram(&[], 4, 10).contains("no samples"));
        let h = histogram(&[5, 5, 5], 3, 10);
        assert!(h.contains("| 3"), "all in one bin: {h}");
    }

    #[test]
    fn compare_runs_reports_deltas() {
        let mk = |comp: u64, sync: u64| {
            let mut b = TimelineBuilder::new(0, "P1", 0, ProcState::Compute);
            b.enter(ProcState::Sync, comp);
            b.finish(comp + sync)
        };
        let a = vec![mk(100, 50)];
        let b = vec![mk(150, 25)];
        let d = compare_runs(&a, &b);
        assert_eq!(d[0].0, "P1");
        assert!((d[0].1 - 50.0).abs() < 1e-9, "compute +50%");
        assert!((d[0].2 + 50.0).abs() < 1e-9, "sync -50%");
    }

    proptest! {
        /// Percentiles are ordered and bounded by min/max.
        #[test]
        fn prop_summary_ordered(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let s = Summary::of(&samples).unwrap();
            prop_assert!(s.min <= s.p50);
            prop_assert!(s.p50 <= s.p95);
            prop_assert!(s.p95 <= s.max);
            prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        }

        /// Histogram bin counts always sum to the sample count.
        #[test]
        fn prop_histogram_conserves(samples in proptest::collection::vec(0u64..10_000, 1..100), bins in 1usize..12) {
            let h = histogram(&samples, bins, 10);
            let total: usize = h
                .lines()
                .filter_map(|l| l.rsplit(' ').next()?.parse::<usize>().ok())
                .sum();
            prop_assert_eq!(total, samples.len());
        }
    }
}
