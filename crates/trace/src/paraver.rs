//! PARAVER-style trace export.
//!
//! The paper uses PARAVER (developed at CEPBA/BSC) to collect and visualize
//! traces. This module writes a simplified version of the PARAVER `.prv`
//! state-record format so that timelines produced by the simulator can be
//! inspected with external tooling or diffed across runs:
//!
//! ```text
//! #Paraver (mtbalance simulated trace)
//! 1:<pid>:<start>:<end>:<state-code>
//! ```
//!
//! State codes follow PARAVER conventions loosely: 1 = running (compute),
//! 2 = sync-wait, 3 = comm, 4 = interrupt/OS, 5 = init, 6 = finalize,
//! 0 = idle.

use crate::state::ProcState;
use crate::timeline::Timeline;

/// Numeric state code used in the exported trace.
pub fn state_code(s: ProcState) -> u32 {
    match s {
        ProcState::Idle => 0,
        ProcState::Compute => 1,
        ProcState::Sync => 2,
        ProcState::Comm => 3,
        ProcState::Interrupt => 4,
        ProcState::Init => 5,
        ProcState::Final => 6,
    }
}

/// Inverse of [`state_code`].
pub fn code_state(c: u32) -> Option<ProcState> {
    Some(match c {
        0 => ProcState::Idle,
        1 => ProcState::Compute,
        2 => ProcState::Sync,
        3 => ProcState::Comm,
        4 => ProcState::Interrupt,
        5 => ProcState::Init,
        6 => ProcState::Final,
        _ => return None,
    })
}

/// A point-to-point communication event for trace export (PARAVER's
/// record type 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommEvent {
    /// Sender pid.
    pub from: usize,
    /// Receiver pid.
    pub to: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Time the send was posted.
    pub send_time: u64,
    /// Time the payload arrived at the receiver.
    pub recv_time: u64,
}

/// Serialize timelines plus communication events:
///
/// ```text
/// 1:<pid>:<start>:<end>:<state-code>
/// 3:<from>:<send>:<to>:<recv>:<bytes>
/// ```
pub fn export_with_comm(timelines: &[Timeline], comms: &[CommEvent]) -> String {
    let mut out = export(timelines);
    for c in comms {
        out.push_str(&format!(
            "3:{}:{}:{}:{}:{}\n",
            c.from, c.send_time, c.to, c.recv_time, c.bytes
        ));
    }
    out
}

/// The PARAVER configuration (`.pcf`) text describing our state codes, so
/// external tools can label the exported trace.
pub fn pcf() -> String {
    let mut out = String::from(
        "DEFAULT_OPTIONS

LEVEL	TASK
UNITS	CYCLES

STATES
",
    );
    for s in ProcState::ALL {
        out.push_str(&format!(
            "{}	{}
",
            state_code(s),
            s.name()
        ));
    }
    out.push_str(
        "
STATES_COLOR
",
    );
    for s in ProcState::ALL {
        // Grey-scale matching the paper's figures: compute dark, sync light.
        let rgb = match s {
            ProcState::Compute => "(64,64,64)",
            ProcState::Sync => "(200,200,200)",
            ProcState::Comm => "(0,0,0)",
            ProcState::Interrupt => "(255,0,0)",
            ProcState::Init | ProcState::Final => "(255,255,255)",
            ProcState::Idle => "(230,230,230)",
        };
        out.push_str(&format!(
            "{}	{}
",
            state_code(s),
            rgb
        ));
    }
    out
}

/// Serialize timelines to the simplified `.prv` text format.
pub fn export(timelines: &[Timeline]) -> String {
    let mut out = String::from("#Paraver (mtbalance simulated trace)\n");
    for tl in timelines {
        for iv in tl.intervals() {
            out.push_str(&format!(
                "1:{}:{}:{}:{}\n",
                tl.pid,
                iv.start,
                iv.end,
                state_code(iv.state)
            ));
        }
    }
    out
}

/// Parse a trace previously produced by [`export`]. Unknown lines are
/// skipped; malformed state codes yield an error.
pub fn import(text: &str) -> Result<Vec<Timeline>, String> {
    use crate::timeline::TimelineBuilder;
    use std::collections::BTreeMap;

    // pid -> ordered (start, end, state)
    let mut recs: BTreeMap<usize, Vec<(u64, u64, ProcState)>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(':').collect();
        if parts.len() != 5 || parts[0] != "1" {
            continue;
        }
        let parse = |s: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("line {}: bad number {s:?}", lineno + 1))
        };
        let pid = parse(parts[1])? as usize;
        let start = parse(parts[2])?;
        let end = parse(parts[3])?;
        let code = parse(parts[4])? as u32;
        let state =
            code_state(code).ok_or_else(|| format!("line {}: bad state {code}", lineno + 1))?;
        recs.entry(pid).or_default().push((start, end, state));
    }

    let mut out = Vec::new();
    for (pid, mut ivs) in recs {
        ivs.sort_by_key(|r| r.0);
        let first = ivs.first().copied();
        let Some((t0, _, s0)) = first else { continue };
        let mut b = TimelineBuilder::new(pid, format!("P{pid}"), t0, s0);
        let mut t_end = t0;
        for (start, end, state) in ivs {
            b.enter(state, start);
            t_end = end;
        }
        out.push(b.finish(t_end));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineBuilder;

    fn sample() -> Vec<Timeline> {
        let mut b = TimelineBuilder::new(3, "P3", 0, ProcState::Init);
        b.enter(ProcState::Compute, 10);
        b.enter(ProcState::Sync, 90);
        let t = b.finish(120);
        vec![t]
    }

    #[test]
    fn codes_roundtrip() {
        for s in ProcState::ALL {
            assert_eq!(code_state(state_code(s)), Some(s));
        }
        assert_eq!(code_state(99), None);
    }

    #[test]
    fn export_emits_one_record_per_interval() {
        let text = export(&sample());
        let recs: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], "1:3:0:10:5");
        assert_eq!(recs[1], "1:3:10:90:1");
        assert_eq!(recs[2], "1:3:90:120:2");
    }

    #[test]
    fn export_import_roundtrips() {
        let orig = sample();
        let back = import(&export(&orig)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].pid, 3);
        assert_eq!(back[0].intervals(), orig[0].intervals());
    }

    #[test]
    fn import_skips_garbage_and_reports_bad_codes() {
        let ok = import("#comment\nnot-a-record\n1:0:0:5:1\n").unwrap();
        assert_eq!(ok.len(), 1);
        let err = import("1:0:0:5:42\n");
        assert!(err.is_err());
    }

    #[test]
    fn import_empty_is_empty() {
        assert!(import("").unwrap().is_empty());
    }

    #[test]
    fn comm_records_append_after_states() {
        let comms = vec![CommEvent {
            from: 0,
            to: 1,
            bytes: 4096,
            send_time: 10,
            recv_time: 900,
        }];
        let text = export_with_comm(&sample(), &comms);
        assert!(text.contains("3:0:10:1:900:4096"));
        // State records still importable (type-3 lines are skipped).
        let back = import(&text).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn pcf_lists_every_state_once() {
        let cfg = pcf();
        for s in ProcState::ALL {
            assert!(cfg.contains(s.name()), "missing {s}");
        }
        assert!(cfg.contains("STATES_COLOR"));
    }
}
