//! The paper's evaluation metrics.
//!
//! Section VII of the paper uses two headline metrics:
//!
//! 1. **Imbalance percentage** — "the maximum waiting time in percentage of
//!    the processes in the MPI application": for each process, the share of
//!    its lifetime spent waiting at synchronization points; the imbalance of
//!    the run is the *maximum* of those shares, expressed in percent.
//! 2. **Total execution time** — the wall time of the whole application
//!    (here: simulated cycles converted to nominal seconds).
//!
//! Tables IV-VI additionally report, per process, the percentage of time
//! spent computing (`Comp %`) and synchronizing (`Sync %`); this module
//! computes all of those from a set of [`Timeline`]s.

use crate::state::ProcState;
use crate::timeline::Timeline;
use crate::{cycles_to_seconds, Cycles};

/// Per-process breakdown: one row of the paper's characterization tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcBreakdown {
    /// Process id.
    pub pid: usize,
    /// Display label (e.g. "P1").
    pub label: String,
    /// Share of lifetime spent doing useful work, in percent.
    pub comp_pct: f64,
    /// Share of lifetime spent waiting at sync points, in percent.
    pub sync_pct: f64,
    /// Share of lifetime spent communicating, in percent.
    pub comm_pct: f64,
    /// Share of lifetime stolen by OS activity, in percent.
    pub interrupt_pct: f64,
    /// Absolute useful time in cycles.
    pub comp_cycles: Cycles,
    /// Absolute waiting time in cycles.
    pub sync_cycles: Cycles,
    /// Lifetime of the process in cycles.
    pub lifetime: Cycles,
}

/// Aggregated metrics for one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Per-process rows, ordered by pid.
    pub procs: Vec<ProcBreakdown>,
    /// The paper's imbalance metric, in percent (max sync share).
    pub imbalance_pct: f64,
    /// End of the latest timeline minus start of the earliest, in cycles.
    pub exec_cycles: Cycles,
}

impl RunMetrics {
    /// Compute all metrics from per-process timelines.
    ///
    /// Empty input yields zeroed metrics. A process with a zero-length
    /// lifetime contributes 0% to every share.
    pub fn from_timelines(timelines: &[Timeline]) -> RunMetrics {
        let mut procs: Vec<ProcBreakdown> = timelines
            .iter()
            .map(|t| {
                let life = t.duration();
                let pct = |c: Cycles| {
                    if life == 0 {
                        0.0
                    } else {
                        100.0 * c as f64 / life as f64
                    }
                };
                let comp = t.time_where(ProcState::is_useful);
                let sync = t.time_where(ProcState::is_waiting);
                ProcBreakdown {
                    pid: t.pid,
                    label: t.label.clone(),
                    comp_pct: pct(comp),
                    sync_pct: pct(sync),
                    comm_pct: pct(t.time_in(ProcState::Comm)),
                    interrupt_pct: pct(t.time_in(ProcState::Interrupt)),
                    comp_cycles: comp,
                    sync_cycles: sync,
                    lifetime: life,
                }
            })
            .collect();
        procs.sort_by_key(|p| p.pid);

        let imbalance_pct = procs.iter().map(|p| p.sync_pct).fold(0.0_f64, f64::max);

        let start = timelines.iter().map(Timeline::start).min().unwrap_or(0);
        let end = timelines.iter().map(Timeline::end).max().unwrap_or(0);

        RunMetrics {
            procs,
            imbalance_pct,
            exec_cycles: end.saturating_sub(start),
        }
    }

    /// Execution time in nominal seconds.
    pub fn exec_seconds(&self) -> f64 {
        cycles_to_seconds(self.exec_cycles)
    }

    /// Percentage improvement of `self` over a reference run
    /// (positive = `self` is faster), as the paper reports it:
    /// `100 * (ref - this) / ref`.
    pub fn improvement_over(&self, reference: &RunMetrics) -> f64 {
        if reference.exec_cycles == 0 {
            return 0.0;
        }
        100.0 * (reference.exec_cycles as f64 - self.exec_cycles as f64)
            / reference.exec_cycles as f64
    }

    /// Speedup of `self` relative to `reference` (>1 = faster).
    pub fn speedup_over(&self, reference: &RunMetrics) -> f64 {
        if self.exec_cycles == 0 {
            return f64::INFINITY;
        }
        reference.exec_cycles as f64 / self.exec_cycles as f64
    }
}

/// A compact imbalance summary used by the dynamic balancing policy: who is
/// the bottleneck, who has the most slack.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// pid of the process with the largest useful-compute time.
    pub bottleneck: usize,
    /// pid of the process with the largest waiting share.
    pub most_waiting: usize,
    /// The imbalance percentage (max waiting share).
    pub imbalance_pct: f64,
    /// Useful cycles of the bottleneck process.
    pub bottleneck_comp: Cycles,
    /// Useful cycles of the least-loaded process.
    pub min_comp: Cycles,
}

impl ImbalanceReport {
    /// Derive a report from run metrics.
    ///
    /// Returns `None` for an empty run.
    pub fn from_metrics(m: &RunMetrics) -> Option<ImbalanceReport> {
        let bottleneck = m.procs.iter().max_by_key(|p| p.comp_cycles)?;
        let most_waiting = m
            .procs
            .iter()
            .max_by(|a, b| a.sync_pct.total_cmp(&b.sync_pct))?;
        let min_comp = m.procs.iter().map(|p| p.comp_cycles).min()?;
        Some(ImbalanceReport {
            bottleneck: bottleneck.pid,
            most_waiting: most_waiting.pid,
            imbalance_pct: m.imbalance_pct,
            bottleneck_comp: bottleneck.comp_cycles,
            min_comp,
        })
    }

    /// Ratio between the heaviest and lightest compute loads (1.0 = fully
    /// balanced). Returns `f64::INFINITY` when the lightest did nothing.
    pub fn load_ratio(&self) -> f64 {
        if self.min_comp == 0 {
            f64::INFINITY
        } else {
            self.bottleneck_comp as f64 / self.min_comp as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineBuilder;
    use proptest::prelude::*;

    /// Two processes: P0 computes 100 and waits 0; P1 computes 25, waits 75.
    fn imbalanced_pair() -> Vec<Timeline> {
        let mut b0 = TimelineBuilder::new(0, "P0", 0, ProcState::Compute);
        b0.enter(ProcState::Compute, 0);
        let t0 = b0.finish(100);

        let mut b1 = TimelineBuilder::new(1, "P1", 0, ProcState::Compute);
        b1.enter(ProcState::Sync, 25);
        let t1 = b1.finish(100);
        vec![t0, t1]
    }

    #[test]
    fn imbalance_is_max_waiting_share() {
        let m = RunMetrics::from_timelines(&imbalanced_pair());
        assert!((m.imbalance_pct - 75.0).abs() < 1e-9);
        assert_eq!(m.exec_cycles, 100);
        assert!((m.procs[0].comp_pct - 100.0).abs() < 1e-9);
        assert!((m.procs[1].comp_pct - 25.0).abs() < 1e-9);
        assert!((m.procs[1].sync_pct - 75.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_balanced_run_has_zero_imbalance() {
        let tls: Vec<Timeline> = (0..4)
            .map(|pid| {
                let b = TimelineBuilder::new(pid, format!("P{pid}"), 0, ProcState::Compute);
                b.finish(50)
            })
            .collect();
        let m = RunMetrics::from_timelines(&tls);
        assert_eq!(m.imbalance_pct, 0.0);
        assert_eq!(m.exec_cycles, 50);
    }

    #[test]
    fn empty_run_yields_zeroes() {
        let m = RunMetrics::from_timelines(&[]);
        assert_eq!(m.exec_cycles, 0);
        assert_eq!(m.imbalance_pct, 0.0);
        assert!(m.procs.is_empty());
        assert!(ImbalanceReport::from_metrics(&m).is_none());
    }

    #[test]
    fn improvement_and_speedup_match_paper_convention() {
        let fast = RunMetrics {
            procs: vec![],
            imbalance_pct: 0.0,
            exec_cycles: 80,
        };
        let slow = RunMetrics {
            procs: vec![],
            imbalance_pct: 0.0,
            exec_cycles: 100,
        };
        assert!((fast.improvement_over(&slow) - 20.0).abs() < 1e-9);
        assert!((fast.speedup_over(&slow) - 1.25).abs() < 1e-9);
        assert!((slow.improvement_over(&fast) + 25.0).abs() < 1e-9);
    }

    #[test]
    fn report_identifies_bottleneck_and_waiter() {
        let m = RunMetrics::from_timelines(&imbalanced_pair());
        let r = ImbalanceReport::from_metrics(&m).unwrap();
        assert_eq!(r.bottleneck, 0);
        assert_eq!(r.most_waiting, 1);
        assert!((r.load_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn load_ratio_handles_zero_work() {
        let mut b0 = TimelineBuilder::new(0, "P0", 0, ProcState::Compute);
        b0.enter(ProcState::Compute, 0);
        let t0 = b0.finish(10);
        let b1 = TimelineBuilder::new(1, "P1", 0, ProcState::Sync);
        let t1 = b1.finish(10);
        let m = RunMetrics::from_timelines(&[t0, t1]);
        let r = ImbalanceReport::from_metrics(&m).unwrap();
        assert!(r.load_ratio().is_infinite());
    }

    proptest! {
        /// Percentages are always within [0, 100] and per-process shares sum
        /// to at most 100 (idle may absorb the rest).
        #[test]
        fn prop_percentages_bounded(
            steps in proptest::collection::vec(
                (0usize..7, 1u64..500), 1..40),
        ) {
            let mut b = TimelineBuilder::new(0, "P", 0, ProcState::Compute);
            let mut t = 0;
            for (si, d) in &steps {
                t += d;
                b.enter(ProcState::ALL[*si], t);
            }
            let tl = b.finish(t + 1);
            let m = RunMetrics::from_timelines(&[tl]);
            let p = &m.procs[0];
            for v in [p.comp_pct, p.sync_pct, p.comm_pct, p.interrupt_pct] {
                prop_assert!((0.0..=100.0 + 1e-9).contains(&v));
            }
            prop_assert!(p.comp_pct + p.sync_pct + p.comm_pct + p.interrupt_pct <= 100.0 + 1e-6);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&m.imbalance_pct));
        }

        /// Imbalance equals the max of per-process sync shares.
        #[test]
        fn prop_imbalance_is_max_sync(
            lives in proptest::collection::vec((1u64..1000, 0u64..1000), 1..8),
        ) {
            let tls: Vec<Timeline> = lives.iter().enumerate().map(|(pid, (comp, sync))| {
                let mut b = TimelineBuilder::new(pid, format!("P{pid}"), 0, ProcState::Compute);
                b.enter(ProcState::Sync, *comp);
                b.finish(comp + sync)
            }).collect();
            let m = RunMetrics::from_timelines(&tls);
            let max_sync = m.procs.iter().map(|p| p.sync_pct).fold(0.0, f64::max);
            prop_assert!((m.imbalance_pct - max_sync).abs() < 1e-9);
        }
    }
}
