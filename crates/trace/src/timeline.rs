//! Per-process state timelines.
//!
//! A [`Timeline`] is a gap-free, monotonically ordered sequence of
//! [`Interval`]s describing what one process did from its start to its end.
//! Timelines are produced by the system simulator (via [`TimelineBuilder`])
//! and consumed by the metrics and Gantt modules.

use crate::state::ProcState;
use crate::Cycles;

/// A half-open interval `[start, end)` during which a process was in a
/// single state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First cycle of the interval (inclusive).
    pub start: Cycles,
    /// One past the last cycle of the interval (exclusive).
    pub end: Cycles,
    /// What the process was doing.
    pub state: ProcState,
}

impl Interval {
    /// Duration in cycles.
    pub fn len(&self) -> Cycles {
        self.end - self.start
    }

    /// True when the interval covers no time.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The complete activity record of one simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Process identifier (MPI rank or OS pid, depending on producer).
    pub pid: usize,
    /// Human-readable label (e.g. `"P1"`).
    pub label: String,
    intervals: Vec<Interval>,
}

impl Timeline {
    /// The recorded intervals, in increasing time order, gap-free.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Time at which the process started (start of its first interval).
    /// Zero for an empty timeline.
    pub fn start(&self) -> Cycles {
        self.intervals.first().map_or(0, |i| i.start)
    }

    /// Time at which the process ended (end of its last interval).
    /// Zero for an empty timeline.
    pub fn end(&self) -> Cycles {
        self.intervals.last().map_or(0, |i| i.end)
    }

    /// Total recorded duration.
    pub fn duration(&self) -> Cycles {
        self.end() - self.start()
    }

    /// Total cycles spent in `state`.
    pub fn time_in(&self, state: ProcState) -> Cycles {
        self.intervals
            .iter()
            .filter(|i| i.state == state)
            .map(Interval::len)
            .sum()
    }

    /// Total cycles for which `pred` holds on the interval state.
    pub fn time_where(&self, pred: impl Fn(ProcState) -> bool) -> Cycles {
        self.intervals
            .iter()
            .filter(|i| pred(i.state))
            .map(Interval::len)
            .sum()
    }

    /// The state of the process at cycle `t`, if `t` is within the recorded
    /// range. Binary search; O(log n).
    pub fn state_at(&self, t: Cycles) -> Option<ProcState> {
        let idx = self.intervals.partition_point(|i| i.end <= t);
        let iv = self.intervals.get(idx)?;
        (iv.start <= t && t < iv.end).then_some(iv.state)
    }

    /// Reassemble a timeline from raw parts (checkpoint restore). The
    /// intervals must satisfy the builder invariants — contiguous,
    /// ordered, non-empty — or an error describing the violation is
    /// returned.
    pub fn from_parts(
        pid: usize,
        label: String,
        intervals: Vec<Interval>,
    ) -> Result<Timeline, String> {
        let t = Timeline {
            pid,
            label,
            intervals,
        };
        t.check_invariants()?;
        Ok(t)
    }

    /// Verify the internal invariants: intervals are non-empty, contiguous
    /// and ordered. Returns a description of the first violation, if any.
    /// Builders uphold these by construction; this is used by tests and
    /// by debug assertions downstream.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.intervals.windows(2) {
            if w[0].end != w[1].start {
                return Err(format!(
                    "gap/overlap between intervals ending {} and starting {}",
                    w[0].end, w[1].start
                ));
            }
        }
        for iv in &self.intervals {
            if iv.start >= iv.end {
                return Err(format!("empty/negative interval at {}", iv.start));
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Timeline`]s.
///
/// The producer calls [`TimelineBuilder::enter`] every time the process
/// changes state; consecutive `enter`s with the same state are merged, and
/// zero-length intervals are dropped, so producers may be sloppy about
/// redundant transitions.
#[derive(Debug, Clone)]
pub struct TimelineBuilder {
    pid: usize,
    label: String,
    intervals: Vec<Interval>,
    current: Option<(Cycles, ProcState)>,
}

impl TimelineBuilder {
    /// Start building a timeline for process `pid` that begins at `t0` in
    /// state `initial`.
    pub fn new(pid: usize, label: impl Into<String>, t0: Cycles, initial: ProcState) -> Self {
        TimelineBuilder {
            pid,
            label: label.into(),
            intervals: Vec::new(),
            current: Some((t0, initial)),
        }
    }

    /// Record that the process enters `state` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the start of the currently open interval —
    /// time cannot run backwards.
    pub fn enter(&mut self, state: ProcState, t: Cycles) {
        let (start, cur) = self
            .current
            .expect("enter() called on a finished TimelineBuilder");
        assert!(
            t >= start,
            "timeline for pid {} going backwards: {} -> {}",
            self.pid,
            start,
            t
        );
        if cur == state {
            return; // redundant transition; keep the open interval
        }
        if t > start {
            self.push_merged(Interval {
                start,
                end: t,
                state: cur,
            });
        }
        self.current = Some((t, state));
    }

    /// Close the timeline at time `t` and return the finished [`Timeline`].
    ///
    /// # Panics
    /// Panics if `t` precedes the start of the open interval.
    pub fn finish(mut self, t: Cycles) -> Timeline {
        let (start, cur) = self
            .current
            .take()
            .expect("finish() called twice on a TimelineBuilder");
        assert!(t >= start, "finish() before last transition");
        if t > start {
            self.push_merged(Interval {
                start,
                end: t,
                state: cur,
            });
        }
        Timeline {
            pid: self.pid,
            label: self.label,
            intervals: self.intervals,
        }
    }

    /// Time at which the currently open interval began.
    pub fn open_since(&self) -> Option<Cycles> {
        self.current.map(|(t, _)| t)
    }

    /// Decompose the builder into its raw parts for checkpointing:
    /// `(pid, label, closed intervals, open (since, state))`.
    pub fn save_parts(&self) -> (usize, String, Vec<Interval>, Option<(Cycles, ProcState)>) {
        (
            self.pid,
            self.label.clone(),
            self.intervals.clone(),
            self.current,
        )
    }

    /// Reassemble a builder from [`TimelineBuilder::save_parts`] output.
    /// The closed intervals must satisfy the timeline invariants and the
    /// open interval (when present) must start at or after the last
    /// closed end.
    pub fn from_parts(
        pid: usize,
        label: String,
        intervals: Vec<Interval>,
        current: Option<(Cycles, ProcState)>,
    ) -> Result<TimelineBuilder, String> {
        for w in intervals.windows(2) {
            if w[0].end != w[1].start {
                return Err(format!(
                    "gap/overlap between intervals ending {} and starting {}",
                    w[0].end, w[1].start
                ));
            }
        }
        for iv in &intervals {
            if iv.start >= iv.end {
                return Err(format!("empty/negative interval at {}", iv.start));
            }
        }
        if let (Some(last), Some((since, _))) = (intervals.last(), current) {
            if since < last.end {
                return Err(format!(
                    "open interval at {} precedes closed end {}",
                    since, last.end
                ));
            }
        }
        Ok(TimelineBuilder {
            pid,
            label,
            intervals,
            current,
        })
    }

    /// State of the currently open interval.
    pub fn current_state(&self) -> Option<ProcState> {
        self.current.map(|(_, s)| s)
    }

    fn push_merged(&mut self, iv: Interval) {
        if let Some(last) = self.intervals.last_mut() {
            if last.state == iv.state && last.end == iv.start {
                last.end = iv.end;
                return;
            }
        }
        self.intervals.push(iv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build_simple() -> Timeline {
        let mut b = TimelineBuilder::new(0, "P1", 0, ProcState::Init);
        b.enter(ProcState::Compute, 10);
        b.enter(ProcState::Sync, 50);
        b.enter(ProcState::Compute, 60);
        b.finish(100)
    }

    #[test]
    fn builds_contiguous_intervals() {
        let t = build_simple();
        t.check_invariants().unwrap();
        assert_eq!(t.intervals().len(), 4);
        assert_eq!(t.start(), 0);
        assert_eq!(t.end(), 100);
        assert_eq!(t.duration(), 100);
    }

    #[test]
    fn time_accounting_sums_by_state() {
        let t = build_simple();
        assert_eq!(t.time_in(ProcState::Init), 10);
        assert_eq!(t.time_in(ProcState::Compute), 80);
        assert_eq!(t.time_in(ProcState::Sync), 10);
        assert_eq!(t.time_in(ProcState::Comm), 0);
        assert_eq!(t.time_where(|s| s.is_useful()), 90);
    }

    #[test]
    fn state_at_returns_correct_state() {
        let t = build_simple();
        assert_eq!(t.state_at(0), Some(ProcState::Init));
        assert_eq!(t.state_at(9), Some(ProcState::Init));
        assert_eq!(t.state_at(10), Some(ProcState::Compute));
        assert_eq!(t.state_at(55), Some(ProcState::Sync));
        assert_eq!(t.state_at(99), Some(ProcState::Compute));
        assert_eq!(t.state_at(100), None);
    }

    #[test]
    fn redundant_transitions_are_merged() {
        let mut b = TimelineBuilder::new(1, "P2", 0, ProcState::Compute);
        b.enter(ProcState::Compute, 5);
        b.enter(ProcState::Compute, 7);
        b.enter(ProcState::Sync, 10);
        b.enter(ProcState::Compute, 10); // zero-length sync: dropped
        let t = b.finish(20);
        assert_eq!(t.intervals().len(), 1);
        assert_eq!(t.time_in(ProcState::Compute), 20);
    }

    #[test]
    fn adjacent_same_state_intervals_merge_across_zero_gap() {
        let mut b = TimelineBuilder::new(1, "P2", 0, ProcState::Compute);
        b.enter(ProcState::Sync, 10);
        b.enter(ProcState::Compute, 10); // sync collapses to zero
        let t = b.finish(20);
        assert_eq!(t.intervals().len(), 1, "{:?}", t.intervals());
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_go_backwards() {
        let mut b = TimelineBuilder::new(0, "P1", 100, ProcState::Compute);
        b.enter(ProcState::Sync, 50);
    }

    #[test]
    fn empty_timeline_has_zero_duration() {
        let b = TimelineBuilder::new(0, "P1", 42, ProcState::Compute);
        let t = b.finish(42);
        assert_eq!(t.duration(), 0);
        assert!(t.intervals().is_empty());
        assert_eq!(t.state_at(42), None);
    }

    proptest! {
        /// For any sequence of (state, duration) steps, the built timeline
        /// is gap-free, ordered, and conserves total time.
        #[test]
        fn prop_timeline_conserves_time(
            steps in proptest::collection::vec((0usize..7, 0u64..1000), 0..64),
            t0 in 0u64..1_000_000,
        ) {
            let mut b = TimelineBuilder::new(0, "P", t0, ProcState::Compute);
            let mut t = t0;
            for (si, d) in &steps {
                t += d;
                b.enter(ProcState::ALL[*si], t);
            }
            let tl = b.finish(t);
            prop_assert!(tl.check_invariants().is_ok());
            let total: Cycles = ProcState::ALL.iter().map(|&s| tl.time_in(s)).sum();
            prop_assert_eq!(total, t - t0);
            prop_assert_eq!(tl.duration(), t - t0);
        }

        /// `state_at` agrees with the interval list everywhere.
        #[test]
        fn prop_state_at_matches_intervals(
            steps in proptest::collection::vec((0usize..7, 1u64..100), 1..32),
        ) {
            let mut b = TimelineBuilder::new(0, "P", 0, ProcState::Idle);
            let mut t = 0;
            for (si, d) in &steps {
                t += d;
                b.enter(ProcState::ALL[*si], t);
            }
            let tl = b.finish(t + 1);
            for iv in tl.intervals() {
                prop_assert_eq!(tl.state_at(iv.start), Some(iv.state));
                prop_assert_eq!(tl.state_at(iv.end - 1), Some(iv.state));
            }
        }
    }
}
