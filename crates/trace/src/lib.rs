//! # mtb-trace — tracing, metrics and reporting
//!
//! This crate is the measurement substrate of the `mtbalance` project. It
//! plays the role that PARAVER [Labarta et al.] plays in the paper
//! *"Balancing HPC Applications Through Smart Allocation of Resources in MT
//! Processors"* (IPDPS 2008): it records what every simulated process was
//! doing at every instant (computing, waiting at a synchronization point,
//! communicating, being interrupted, ...), derives the paper's metrics from
//! those records (percentage of compute/sync time per process, the
//! *imbalance percentage*, total execution time), renders ASCII Gantt charts
//! equivalent to the paper's Figures 1-4, and formats the result tables
//! (Tables IV-VI).
//!
//! The fundamental unit of time throughout the workspace is the **cycle**
//! (`u64`). A nominal clock frequency converts cycles to "seconds" for
//! table-compatible reporting; absolute seconds are not meaningful in a
//! simulation, only their ratios are.

#![forbid(unsafe_code)]

pub mod energy;
pub mod gantt;
pub mod metrics;
pub mod paraver;
pub mod state;
pub mod stats;
pub mod table;
pub mod timeline;

pub use energy::{EnergyModel, EnergyReport};
pub use gantt::{render_gantt, GanttConfig};
pub use metrics::{ImbalanceReport, ProcBreakdown, RunMetrics};
pub use state::ProcState;
pub use table::Table;
pub use timeline::{Interval, Timeline, TimelineBuilder};

/// Simulated time, measured in processor cycles.
pub type Cycles = u64;

/// Nominal clock frequency used to convert simulated cycles into "seconds"
/// for human-readable reports (the POWER5 in the paper's OpenPower 710 runs
/// at roughly this frequency). The absolute value is irrelevant to every
/// conclusion; only ratios between runs matter.
pub const NOMINAL_CLOCK_HZ: f64 = 1.5e9;

/// Convert a cycle count to nominal seconds.
pub fn cycles_to_seconds(c: Cycles) -> f64 {
    c as f64 / NOMINAL_CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_convert_to_seconds_linearly() {
        assert_eq!(cycles_to_seconds(0), 0.0);
        let one = cycles_to_seconds(NOMINAL_CLOCK_HZ as Cycles);
        assert!((one - 1.0).abs() < 1e-12);
        let two = cycles_to_seconds(2 * NOMINAL_CLOCK_HZ as Cycles);
        assert!((two - 2.0).abs() < 1e-12);
    }
}
