//! Process activity states.
//!
//! Each simulated MPI process is, at any instant, in exactly one of these
//! states. They mirror the color coding of the PARAVER traces in the paper's
//! Figures 2-4: dark-grey bars are [`ProcState::Compute`], light-grey bars
//! are [`ProcState::Sync`] (waiting at a synchronization point) and black
//! bars are [`ProcState::Comm`] (actively exchanging data).

use std::fmt;

/// What a process is doing during an interval of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcState {
    /// Application initialization phase (white bars in the paper's traces).
    Init,
    /// Useful computation.
    Compute,
    /// Blocked at a synchronization point (barrier, wait, recv that has not
    /// been matched yet). This is the *waiting time* that defines the
    /// paper's imbalance metric.
    Sync,
    /// Actively transferring data (the short black bars in Figures 3-4).
    Comm,
    /// Stolen by the OS: interrupt handlers, daemons — the paper's
    /// *extrinsic imbalance* sources (Section II-B).
    Interrupt,
    /// Application finalization phase.
    Final,
    /// The hardware context has no runnable process.
    Idle,
}

impl ProcState {
    /// All states, in rendering order.
    pub const ALL: [ProcState; 7] = [
        ProcState::Init,
        ProcState::Compute,
        ProcState::Sync,
        ProcState::Comm,
        ProcState::Interrupt,
        ProcState::Final,
        ProcState::Idle,
    ];

    /// Single-character glyph used by the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            ProcState::Init => 'i',
            ProcState::Compute => '#',
            ProcState::Sync => '.',
            ProcState::Comm => '%',
            ProcState::Interrupt => '!',
            ProcState::Final => 'f',
            ProcState::Idle => ' ',
        }
    }

    /// Does this state count as "useful work" for the compute-percentage
    /// columns of Tables IV-VI? The paper counts init/finalize computation
    /// as computing time as well.
    pub fn is_useful(self) -> bool {
        matches!(
            self,
            ProcState::Compute | ProcState::Init | ProcState::Final
        )
    }

    /// Does this state count as *waiting* for the imbalance metric?
    pub fn is_waiting(self) -> bool {
        matches!(self, ProcState::Sync)
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProcState::Init => "init",
            ProcState::Compute => "compute",
            ProcState::Sync => "sync",
            ProcState::Comm => "comm",
            ProcState::Interrupt => "interrupt",
            ProcState::Final => "final",
            ProcState::Idle => "idle",
        }
    }
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in ProcState::ALL {
            assert!(seen.insert(s.glyph()), "duplicate glyph for {s}");
        }
    }

    #[test]
    fn useful_and_waiting_are_disjoint() {
        for s in ProcState::ALL {
            assert!(
                !(s.is_useful() && s.is_waiting()),
                "{s} cannot be both useful and waiting"
            );
        }
    }

    #[test]
    fn names_roundtrip_display() {
        for s in ProcState::ALL {
            assert_eq!(format!("{s}"), s.name());
        }
    }

    #[test]
    fn compute_counts_as_useful_sync_as_waiting() {
        assert!(ProcState::Compute.is_useful());
        assert!(ProcState::Sync.is_waiting());
        assert!(!ProcState::Sync.is_useful());
        assert!(!ProcState::Compute.is_waiting());
    }
}
