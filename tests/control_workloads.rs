//! Integration tests for the EXT-8 control experiment: balanced workloads
//! gain nothing from priorities, misapplied priorities hurt, and the
//! audited dynamic policy stays idle.

use mtbalance::balance::paper_cases::{btmz_cases, btmz_paired_placement};
use mtbalance::workloads::spmz::{MzKind, SpMzConfig};
use mtbalance::{execute, execute_with, DynamicBalancer, StaticRun};

fn cfg(kind: MzKind) -> SpMzConfig {
    let mut c = SpMzConfig::tiny(kind);
    c.iterations = 12;
    c.scale = 1e-2;
    c
}

#[test]
fn balanced_workloads_have_no_imbalance() {
    for kind in [MzKind::SpMz, MzKind::LuMz] {
        let c = cfg(kind);
        let r = execute(StaticRun::new(&c.programs(), c.placement())).unwrap();
        assert!(
            r.metrics.imbalance_pct < 1.0,
            "{kind:?} is balanced by construction: {}",
            r.metrics.imbalance_pct
        );
    }
}

#[test]
fn misapplied_priorities_hurt_balanced_workloads() {
    let c = cfg(MzKind::SpMz);
    let progs = c.programs();
    let reference = execute(StaticRun::new(&progs, c.placement())).unwrap();
    let case_d = &btmz_cases()[3];
    let misapplied = execute(
        StaticRun::new(&progs, btmz_paired_placement()).with_priorities(case_d.priorities.clone()),
    )
    .unwrap();
    assert!(
        misapplied.total_cycles as f64 > reference.total_cycles as f64 * 1.5,
        "boosting non-bottlenecks must backfire: {} vs {}",
        misapplied.total_cycles,
        reference.total_cycles
    );
}

#[test]
fn dynamic_policy_stays_idle_on_balanced_workloads() {
    for kind in [MzKind::SpMz, MzKind::LuMz] {
        let c = cfg(kind);
        let progs = c.programs();
        let reference = execute(StaticRun::new(&progs, c.placement())).unwrap();
        let mut balancer = DynamicBalancer::with_defaults(&c.placement());
        let dynamic = execute_with(StaticRun::new(&progs, c.placement()), &mut balancer).unwrap();
        assert_eq!(
            balancer.adjustments(),
            0,
            "{kind:?}: nothing to adjust on a balanced run"
        );
        assert_eq!(dynamic.total_cycles, reference.total_cycles);
    }
}
