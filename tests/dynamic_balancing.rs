//! Integration tests for the dynamic balancing policy and the predictor —
//! the "future work" extensions built on top of the paper's mechanism.

use mtbalance::workloads::loads;
use mtbalance::workloads::metbench::MetBenchConfig;
use mtbalance::workloads::siesta::SiestaConfig;
use mtbalance::{
    best_priority_pair, execute, execute_with, DynamicBalancer, DynamicConfig, PrioritySetting,
    StaticRun,
};

#[test]
fn dynamic_policy_recovers_most_of_the_static_metbench_win() {
    let cfg = MetBenchConfig::default();
    let progs = cfg.programs();

    let reference = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
    let best_static = execute(
        StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
            PrioritySetting::ProcFs(4),
            PrioritySetting::ProcFs(6),
            PrioritySetting::ProcFs(4),
            PrioritySetting::ProcFs(6),
        ]),
    )
    .unwrap();

    let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
    let dynamic = execute_with(StaticRun::new(&progs, cfg.placement()), &mut balancer).unwrap();

    let imp = |r: &mtbalance::RunResult| {
        100.0 * (reference.total_cycles as f64 - r.total_cycles as f64)
            / reference.total_cycles as f64
    };
    let static_imp = imp(&best_static);
    let dyn_imp = imp(&dynamic);
    assert!(
        static_imp > 5.0,
        "static case C regime wins: {static_imp:.1}%"
    );
    assert!(
        dyn_imp > 0.6 * static_imp,
        "dynamic recovers most of the static win: {dyn_imp:.1}% vs {static_imp:.1}%"
    );
}

#[test]
fn dynamic_policy_helps_siesta_where_static_cannot_track_the_bottleneck() {
    let cfg = SiestaConfig::default();
    let progs = cfg.programs();
    let placement = cfg.placement_paired();

    let reference = execute(StaticRun::new(&progs, placement.clone())).unwrap();
    let mut balancer = DynamicBalancer::new(&placement, DynamicConfig::default());
    let dynamic = execute_with(StaticRun::new(&progs, placement), &mut balancer).unwrap();

    assert!(balancer.adjustments() > 0);
    assert!(
        dynamic.total_cycles < reference.total_cycles,
        "the moving-bottleneck workload benefits from feedback: {} vs {}",
        dynamic.total_cycles,
        reference.total_cycles
    );
}

#[test]
fn predictor_choice_matches_simulated_optimum_for_metbench_pair() {
    // Search priorities for one core of MetBench (light 1x + heavy 4.07x)
    // with the predictor, then verify by simulation that the chosen pair
    // is within 2% of the simulated best pair.
    let load = loads::metbench_load(0);
    let cfg = MetBenchConfig {
        ranks: 2,
        heavy_ranks: vec![1],
        ..Default::default()
    };
    let progs = cfg.programs();
    let placement = cfg.placement();

    let work0 = cfg.work_of(0) * u64::from(cfg.iterations);
    let work1 = cfg.work_of(1) * u64::from(cfg.iterations);
    let (p0, p1, _) = best_priority_pair(&load.profile, &load.profile, work0, work1, 2);
    assert!(p1 > p0, "the heavy rank gets the boost: ({p0},{p1})");

    let simulate = |a: u8, b: u8| {
        execute(
            StaticRun::new(&progs, placement.clone())
                .with_priorities(vec![PrioritySetting::ProcFs(a), PrioritySetting::ProcFs(b)]),
        )
        .unwrap()
        .total_cycles
    };
    let chosen = simulate(p0, p1);
    let mut best = u64::MAX;
    for a in 1..=6u8 {
        for b in 1..=6u8 {
            if a.abs_diff(b) <= 2 {
                best = best.min(simulate(a, b));
            }
        }
    }
    let rel = chosen as f64 / best as f64;
    assert!(rel < 1.02, "predictor within 2% of simulated best: {rel}");
}

#[test]
fn audited_policy_contains_damage_on_pure_noise_imbalance() {
    use mtbalance::os::noise::interrupt_annoyance;
    use mtbalance::workloads::synthetic::SyntheticConfig;
    let cfg = SyntheticConfig {
        skew: 1.0,
        iterations: 16,
        ..Default::default()
    };
    let progs = cfg.programs();
    let noise = interrupt_annoyance(2, 1_500_000, 7_500, 500_000, 50_000);

    let plain = execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise.clone())).unwrap();
    let mut balancer = DynamicBalancer::with_defaults(&cfg.placement());
    let dynamic = execute_with(
        StaticRun::new(&progs, cfg.placement()).with_noise(noise),
        &mut balancer,
    )
    .unwrap();
    assert!(
        (dynamic.total_cycles as f64) < plain.total_cycles as f64 * 1.10,
        "the audit bounds the damage: {} vs {}",
        dynamic.total_cycles,
        plain.total_cycles
    );
}
