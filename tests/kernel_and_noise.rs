//! Integration tests for the OS-layer mechanisms: kernel flavours,
//! priority interfaces and extrinsic noise (Sections II-B and VI).

use mtbalance::os::noise::interrupt_annoyance;
use mtbalance::smt::PrivilegeLevel;
use mtbalance::workloads::metbench::MetBenchConfig;
use mtbalance::workloads::synthetic::SyntheticConfig;
use mtbalance::{execute, CtxAddr, KernelConfig, NoiseSource, PrioritySetting, StaticRun};

fn ticks(period: u64, cost: u64) -> Vec<NoiseSource> {
    (0..4)
        .map(|cpu| NoiseSource::timer(CtxAddr::from_cpu(cpu), period, cost))
        .collect()
}

#[test]
fn vanilla_kernel_defeats_balancing_under_interrupts() {
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 1e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    // User-reachable balancing: drop the light ranks one level.
    let prios = vec![
        PrioritySetting::OrNop(3, PrivilegeLevel::User),
        PrioritySetting::OrNop(4, PrivilegeLevel::User),
        PrioritySetting::OrNop(3, PrivilegeLevel::User),
        PrioritySetting::OrNop(4, PrivilegeLevel::User),
    ];
    let noise = ticks(1_500_000, 7_500);

    let reference =
        execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise.clone())).unwrap();
    let patched = execute(
        StaticRun::new(&progs, cfg.placement())
            .with_priorities(prios.clone())
            .with_noise(noise.clone()),
    )
    .unwrap();
    let vanilla = execute(
        StaticRun::new(&progs, cfg.placement())
            .with_priorities(prios)
            .with_kernel(KernelConfig::vanilla())
            .with_noise(noise),
    )
    .unwrap();

    assert!(
        patched.total_cycles < reference.total_cycles,
        "balancing helps on the patched kernel: {} vs {}",
        patched.total_cycles,
        reference.total_cycles
    );
    // The vanilla run decays to MEDIUM at the first tick: within 1% of the
    // unbalanced reference.
    let rel = (vanilla.total_cycles as f64 - reference.total_cycles as f64).abs()
        / reference.total_cycles as f64;
    assert!(rel < 0.01, "vanilla must match the reference: {rel}");
}

#[test]
fn procfs_requires_the_patch() {
    let cfg = SyntheticConfig::tiny();
    let progs = cfg.programs();
    let res = execute(
        StaticRun::new(&progs, cfg.placement())
            .with_kernel(KernelConfig::vanilla())
            .with_priorities(vec![PrioritySetting::ProcFs(5)]),
    );
    assert!(res.is_err(), "no /proc/<pid>/hmt_priority on stock kernels");
}

#[test]
fn interrupt_annoyance_skews_a_balanced_app() {
    let cfg = SyntheticConfig {
        skew: 1.0,
        iterations: 8,
        ..Default::default()
    };
    let progs = cfg.programs();
    let quiet = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
    assert!(
        quiet.metrics.imbalance_pct < 0.5,
        "balanced app, quiet machine"
    );

    let noise = interrupt_annoyance(2, 1_500_000, 7_500, 500_000, 25_000);
    let noisy = execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise)).unwrap();
    assert!(
        noisy.metrics.imbalance_pct > 2.0,
        "CPU0-routed IRQs must imbalance it: {}",
        noisy.metrics.imbalance_pct
    );
    assert!(noisy.total_cycles > quiet.total_cycles);
    // CPU0's rank suffers the most theft.
    assert!(
        noisy.interrupt_cycles[0] > 3 * noisy.interrupt_cycles[1],
        "interrupt annoyance concentrates on CPU0: {:?}",
        noisy.interrupt_cycles
    );
}

#[test]
fn noise_imbalance_grows_with_duty_cycle() {
    let cfg = SyntheticConfig {
        skew: 1.0,
        iterations: 4,
        ..Default::default()
    };
    let progs = cfg.programs();
    let mut last = -1.0;
    for duty in [1u64, 5, 10] {
        let period = 500_000;
        let noise = vec![NoiseSource::device(
            "dev",
            CtxAddr::from_cpu(0),
            period,
            period * duty / 100,
            0,
        )];
        let r = execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise)).unwrap();
        assert!(
            r.metrics.imbalance_pct > last,
            "imbalance must grow with duty {duty}: {} vs {last}",
            r.metrics.imbalance_pct
        );
        last = r.metrics.imbalance_pct;
    }
}

#[test]
fn daemons_steal_from_their_cpu_only() {
    let cfg = SyntheticConfig {
        skew: 1.0,
        iterations: 4,
        ..Default::default()
    };
    let progs = cfg.programs();
    let noise = vec![NoiseSource::daemon(
        "statsd",
        CtxAddr::from_cpu(2),
        10_000_000,
        500_000,
    )];
    let r = execute(StaticRun::new(&progs, cfg.placement()).with_noise(noise)).unwrap();
    assert!(r.interrupt_cycles[2] > 0);
    assert_eq!(r.interrupt_cycles[0], 0);
    assert_eq!(r.interrupt_cycles[1], 0);
    assert_eq!(r.interrupt_cycles[3], 0);
}
