//! Integration tests asserting the paper's headline results hold in the
//! reproduction — the orderings and inversion phenomena of Tables IV-VI,
//! at full paper scale (cheap: the mesoscale engine's cost scales with
//! events, not simulated cycles).

use mtbalance::balance::paper_cases::{
    btmz_cases, btmz_st_case, metbench_cases, siesta_cases, siesta_st_case,
};
use mtbalance::workloads::{BtMzConfig, MetBenchConfig, SiestaConfig};
use mtbalance::{execute, StaticRun};

fn exec_of(
    programs: &[mtbalance::Program],
    case: &mtbalance::balance::paper_cases::Case,
) -> (u64, f64) {
    let r = execute(
        StaticRun::new(programs, case.placement.clone()).with_priorities(case.priorities.clone()),
    )
    .unwrap();
    (r.total_cycles, r.metrics.imbalance_pct)
}

#[test]
fn table4_metbench_shape() {
    let cfg = MetBenchConfig::default();
    let progs = cfg.programs();
    let cases = metbench_cases();
    let (a, imb_a) = exec_of(&progs, &cases[0]);
    let (b, imb_b) = exec_of(&progs, &cases[1]);
    let (c, imb_c) = exec_of(&progs, &cases[2]);
    let (d, imb_d) = exec_of(&progs, &cases[3]);

    // Paper: A 81.64s (75.69%), B 76.98 (48.82), C 74.90 (1.96), D 95.71 (26.62).
    assert!(b < a, "case B improves: {b} vs {a}");
    assert!(c < a, "case C improves");
    assert!(c <= b, "case C is at least as good as B");
    assert!(d > a, "case D regresses (the inversion)");
    // Improvement factors: B/C in the 5-12% band, D loses 15-25%.
    let imp = |x: u64| 100.0 * (a as f64 - x as f64) / a as f64;
    assert!((4.0..14.0).contains(&imp(b)), "B improvement {}", imp(b));
    assert!((5.0..14.0).contains(&imp(c)), "C improvement {}", imp(c));
    assert!((-28.0..-12.0).contains(&imp(d)), "D regression {}", imp(d));
    // Imbalance: monotone drop A -> B -> C; D re-imbalanced.
    assert!(imb_a > 60.0, "reference is heavily imbalanced: {imb_a}");
    assert!(
        imb_b < imb_a && imb_c < imb_b,
        "{imb_a} > {imb_b} > {imb_c}"
    );
    assert!(imb_d > imb_c, "D reverses the imbalance");
}

#[test]
fn table4_case_a_percentages_match_paper() {
    // Paper case A: light ranks compute ~24.3%, heavy ~99%+.
    let cfg = MetBenchConfig::default();
    let progs = cfg.programs();
    let cases = metbench_cases();
    let r = execute(
        StaticRun::new(&progs, cases[0].placement.clone())
            .with_priorities(cases[0].priorities.clone()),
    )
    .unwrap();
    let p = &r.metrics.procs;
    assert!(
        (20.0..30.0).contains(&p[0].comp_pct),
        "P1 comp {}",
        p[0].comp_pct
    );
    assert!(p[1].comp_pct > 95.0, "P2 comp {}", p[1].comp_pct);
    assert!(
        (20.0..30.0).contains(&p[2].comp_pct),
        "P3 comp {}",
        p[2].comp_pct
    );
    assert!(p[3].comp_pct > 95.0, "P4 comp {}", p[3].comp_pct);
}

#[test]
fn table5_btmz_shape() {
    let cfg = BtMzConfig::default();
    let progs = cfg.programs();
    let cases = btmz_cases();
    let (a, _) = exec_of(&progs, &cases[0]);
    let (b, _) = exec_of(&progs, &cases[1]);
    let (c, _) = exec_of(&progs, &cases[2]);
    let (d, _) = exec_of(&progs, &cases[3]);

    // Paper: A 81.64, B 127.91 (inverted), C 75.62, D 66.88 (the 18% win).
    assert!(b > a, "case B inverts the imbalance: {b} vs {a}");
    assert!(c < a, "case C improves");
    assert!(d < c, "case D is the best");
    let imp_d = 100.0 * (a as f64 - d as f64) / a as f64;
    assert!(
        (14.0..25.0).contains(&imp_d),
        "the headline 18% BT-MZ improvement, got {imp_d:.1}%"
    );

    // In case B, P2 (at LOW, sharing with P3 at HIGH) is the new
    // bottleneck, exactly as the paper reports.
    let rb = execute(
        StaticRun::new(&progs, cases[1].placement.clone())
            .with_priorities(cases[1].priorities.clone()),
    )
    .unwrap();
    let bottleneck = rb
        .metrics
        .procs
        .iter()
        .max_by(|x, y| x.comp_pct.total_cmp(&y.comp_pct))
        .unwrap();
    assert_eq!(bottleneck.pid, 1, "P2 must be case B's bottleneck");
}

#[test]
fn table5_st_mode_is_much_slower_than_smt() {
    let st_cfg = BtMzConfig::st_mode();
    let st = exec_of(&st_cfg.programs(), &btmz_st_case()).0;
    let cfg = BtMzConfig::default();
    let a = exec_of(&cfg.programs(), &btmz_cases()[0]).0;
    // Paper: ST 108.32 vs A 81.64 (SMT wins by ~25%).
    let ratio = st as f64 / a as f64;
    assert!((1.15..1.5).contains(&ratio), "ST/A ratio {ratio}");
}

#[test]
fn table6_siesta_shape() {
    let cfg = SiestaConfig::default();
    let progs = cfg.programs();
    let cases = siesta_cases();
    let (a, imb_a) = exec_of(&progs, &cases[0]);
    let (b, _) = exec_of(&progs, &cases[1]);
    let (c, imb_c) = exec_of(&progs, &cases[2]);
    let (d, _) = exec_of(&progs, &cases[3]);

    // Paper: A 858.57, B 847.91, C 789.20 (the 8.1% win), D 976.35.
    assert!(b < a, "case B improves a little");
    assert!(c < a, "case C improves");
    assert!(d > a, "case D regresses");
    let imp_c = 100.0 * (a as f64 - c as f64) / a as f64;
    assert!(
        (4.0..12.0).contains(&imp_c),
        "SIESTA C improvement {imp_c:.1}%"
    );
    let imp_d = 100.0 * (a as f64 - d as f64) / a as f64;
    assert!(imp_d < -10.0, "SIESTA D loss {imp_d:.1}%");
    assert!(imb_c < imb_a, "C reduces the imbalance");
}

#[test]
fn table6_st_ratio() {
    let st_cfg = SiestaConfig::st_mode();
    let st = exec_of(&st_cfg.programs(), &siesta_st_case()).0;
    let cfg = SiestaConfig::default();
    let a = exec_of(&cfg.programs(), &siesta_cases()[0]).0;
    // Paper: 1236.05 / 858.57 = 1.44.
    let ratio = st as f64 / a as f64;
    assert!((1.2..1.6).contains(&ratio), "SIESTA ST/A ratio {ratio}");
}

#[test]
fn master_worker_variant_reproduces_the_case_shape() {
    // The paper's literal master/worker protocol (bcast + reduce + master
    // statistics) must tell the same balancing story as the barrier
    // variant used for Table IV.
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 5e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    let mw_progs = cfg.master_worker_programs();
    let cases = metbench_cases();

    let run = |p: &[mtbalance::Program], c: usize| {
        execute(
            StaticRun::new(p, cases[c].placement.clone())
                .with_priorities(cases[c].priorities.clone()),
        )
        .unwrap()
        .total_cycles
    };

    let (a, c) = (run(&progs, 0), run(&progs, 2));
    let (mw_a, mw_c) = (run(&mw_progs, 0), run(&mw_progs, 2));

    // Same direction and comparable magnitude of the case-C win.
    let imp = 100.0 * (a as f64 - c as f64) / a as f64;
    let mw_imp = 100.0 * (mw_a as f64 - mw_c as f64) / mw_a as f64;
    assert!(
        mw_imp > 0.0,
        "case C must help under master/worker: {mw_imp:.1}%"
    );
    assert!(
        (imp - mw_imp).abs() < 5.0,
        "protocols agree on the improvement: {imp:.1}% vs {mw_imp:.1}%"
    );
    // The protocols' absolute runtimes are close (the collectives add
    // only library overhead).
    let rel = (a as f64 - mw_a as f64).abs() / a as f64;
    assert!(rel < 0.1, "master/worker overhead is small: {rel}");
}

#[test]
fn figure1_synthetic_story() {
    use mtbalance::workloads::synthetic::SyntheticConfig;
    use mtbalance::PrioritySetting;
    let cfg = SyntheticConfig::default();
    let progs = cfg.programs();
    let reference = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
    let balanced = execute(
        StaticRun::new(&progs, cfg.placement()).with_priorities(vec![
            PrioritySetting::ProcFs(5),
            PrioritySetting::ProcFs(4),
            PrioritySetting::Default,
            PrioritySetting::Default,
        ]),
    )
    .unwrap();
    assert!(balanced.total_cycles < reference.total_cycles);
    // P2 slows down but stays off the critical path (Figure 1(b)).
    let p2 = &balanced.metrics.procs[1];
    assert!(p2.sync_pct > 0.0, "P2 still waits: {p2:?}");
}
