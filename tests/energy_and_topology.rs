//! Integration tests for the energy model and cluster topology at the
//! facade level.

use mtbalance::balance::mapper::{block_placement, striped_placement};
use mtbalance::trace::energy::{measure, EnergyModel};
use mtbalance::workloads::btmz::{contiguous_partition, BtMzConfig};
use mtbalance::workloads::metbench::MetBenchConfig;
use mtbalance::{execute, StaticRun};

#[test]
fn balancing_improves_time_and_energy_together() {
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 2e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    let cases = mtbalance::balance::paper_cases::metbench_cases();
    let model = EnergyModel::default();

    let energy_of = |case_idx: usize| {
        let r = execute(
            StaticRun::new(&progs, cases[case_idx].placement.clone())
                .with_priorities(cases[case_idx].priorities.clone()),
        )
        .unwrap();
        (
            r.total_cycles,
            measure(&r.timelines, &r.retired, r.total_cycles, 4, &model),
        )
    };
    let (t_a, e_a) = energy_of(0);
    let (t_c, e_c) = energy_of(2);
    assert!(t_c < t_a);
    assert!(
        e_c.joules < e_a.joules,
        "case C saves energy: {} vs {}",
        e_c.joules,
        e_a.joules
    );
    assert!(e_c.edp < e_a.edp, "and EDP");

    let (t_d, e_d) = energy_of(3);
    assert!(t_d > t_a);
    assert!(e_d.joules > e_a.joules, "the inversion wastes energy too");
}

#[test]
fn cross_node_placement_costs_real_time() {
    let cfg = BtMzConfig {
        ranks: 8,
        iterations: 10,
        scale: 5e-2,
        exchange_bytes: 64 << 20,
        ..Default::default()
    }
    .with_partition(contiguous_partition(8));
    let progs = cfg.programs();

    let run = |placement| {
        execute(StaticRun::new(&progs, placement).on_cluster(2, 2))
            .unwrap()
            .total_cycles
    };
    let striped = run(striped_placement(8, 2, 2));
    let block = run(block_placement(8));
    assert!(
        (block as f64) < striped as f64 * 0.95,
        "keeping ring edges on-node must pay: {block} vs {striped}"
    );
}

#[test]
fn single_node_placements_are_equivalent() {
    // Without a network tier, striped vs block placement differ only in
    // which SMT pairs form — with equal work the difference is small.
    let cfg = MetBenchConfig {
        iterations: 8,
        scale: 5e-3,
        heavy_ranks: vec![],
        ..Default::default()
    };
    let progs = cfg.programs();
    let a = execute(StaticRun::new(&progs, block_placement(4))).unwrap();
    let b = execute(StaticRun::new(&progs, striped_placement(4, 1, 2))).unwrap();
    let rel = (a.total_cycles as f64 - b.total_cycles as f64).abs() / a.total_cycles as f64;
    assert!(rel < 0.02, "balanced single-node placements agree: {rel}");
}
