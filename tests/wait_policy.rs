//! Integration tests for the EXT-11 wait-policy experiment: how ranks
//! wait inside MPI calls changes the sibling's world (Section VI).

use mtbalance::workloads::metbench::MetBenchConfig;
use mtbalance::{execute, StaticRun, WaitPolicy};

fn run(policy: WaitPolicy) -> u64 {
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 2e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    execute(StaticRun::new(&progs, cfg.placement()).with_wait_policy(policy))
        .unwrap()
        .total_cycles
}

#[test]
fn cooperative_waiting_beats_stock_spinning() {
    let stock = run(WaitPolicy::SpinOwn);
    let coop = run(WaitPolicy::SpinAt(2));
    let block = run(WaitPolicy::Block);
    assert!(
        (coop as f64) < stock as f64 * 0.95,
        "spin-at-LOW must free decode slots: {coop} vs {stock}"
    );
    assert!(
        block <= coop,
        "blocking donates at least as much as a lowered spin: {block} vs {coop}"
    );
}

#[test]
fn wait_policy_composes_with_priorities() {
    // With case-C priorities the waiters are already starved of decode
    // slots, so the wait policy makes little further difference — the two
    // mechanisms converge on the same slots.
    let cases = mtbalance::balance::paper_cases::metbench_cases();
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 2e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    let with = |policy: WaitPolicy| {
        execute(
            StaticRun::new(&progs, cases[2].placement.clone())
                .with_priorities(cases[2].priorities.clone())
                .with_wait_policy(policy),
        )
        .unwrap()
        .total_cycles
    };
    let stock = with(WaitPolicy::SpinOwn);
    let block = with(WaitPolicy::Block);
    let rel = (stock as f64 - block as f64).abs() / stock as f64;
    assert!(
        rel < 0.02,
        "under case-C priorities the policies converge: {rel}"
    );
}

#[test]
fn spin_waste_shrinks_under_cooperative_waiting() {
    let cfg = MetBenchConfig {
        iterations: 20,
        scale: 2e-2,
        ..Default::default()
    };
    let progs = cfg.programs();
    let spin_of = |policy: WaitPolicy| {
        let r = execute(StaticRun::new(&progs, cfg.placement()).with_wait_policy(policy)).unwrap();
        r.spin_cycles.iter().sum::<u64>()
    };
    let stock = spin_of(WaitPolicy::SpinOwn);
    let block = spin_of(WaitPolicy::Block);
    assert!(stock > 0, "stock MPICH burns cycles spinning");
    assert_eq!(block, 0, "blocking waits burn nothing");
}
