//! Cross-crate determinism and model-fidelity integration tests.

use mtbalance::balance::paper_cases::metbench_cases;
use mtbalance::workloads::metbench::MetBenchConfig;
use mtbalance::workloads::siesta::SiestaConfig;
use mtbalance::{execute, StaticRun};

#[test]
fn full_runs_are_bit_deterministic() {
    let run = || {
        let cfg = SiestaConfig {
            iterations: 10,
            scale: 1e-2,
            ..Default::default()
        };
        let progs = cfg.programs();
        execute(StaticRun::new(&progs, cfg.placement_paired())).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.timelines, b.timelines);
}

#[test]
fn different_seeds_change_the_details_not_the_shape() {
    let exec_with_seed = |seed: u64| {
        let cfg = SiestaConfig {
            iterations: 10,
            scale: 1e-2,
            seed,
            ..Default::default()
        };
        let progs = cfg.programs();
        execute(StaticRun::new(&progs, cfg.placement_reference()))
            .unwrap()
            .total_cycles
    };
    let a = exec_with_seed(1);
    let b = exec_with_seed(2);
    assert_ne!(a, b, "different load profiles must differ in detail");
    let rel = (a as f64 - b as f64).abs() / a as f64;
    assert!(rel < 0.15, "but total time is seed-stable to ~15%: {rel}");
}

#[test]
fn cycle_accurate_engine_reproduces_the_metbench_ordering() {
    // The expensive fidelity check: run MetBench cases A and C on the
    // cycle-level core (tiny scale) and confirm the balancing direction
    // matches the mesoscale result.
    let cfg = MetBenchConfig {
        iterations: 2,
        scale: 2e-6,
        ..Default::default()
    };
    let progs = cfg.programs();
    let cases = metbench_cases();

    let run = |case_idx: usize, cycle_accurate: bool| {
        let case = &cases[case_idx];
        let mut run =
            StaticRun::new(&progs, case.placement.clone()).with_priorities(case.priorities.clone());
        if cycle_accurate {
            run = run.cycle_accurate();
        }
        execute(run).unwrap().total_cycles
    };

    let a_meso = run(0, false);
    let c_meso = run(2, false);
    let a_cyc = run(0, true);
    let c_cyc = run(2, true);

    assert!(c_meso < a_meso, "meso: C beats A");
    assert!(
        c_cyc < a_cyc,
        "cycle-accurate: C beats A too ({c_cyc} vs {a_cyc})"
    );

    // Absolute agreement between the models stays within a factor ~1.5
    // at this scale (cold caches hurt the cycle model).
    let ratio = a_cyc as f64 / a_meso as f64;
    assert!((0.5..2.0).contains(&ratio), "A-case model ratio {ratio}");
}

#[test]
fn paraver_export_roundtrips_a_real_run() {
    let cfg = MetBenchConfig::tiny();
    let progs = cfg.programs();
    let r = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
    let text = mtbalance::trace::paraver::export(&r.timelines);
    let back = mtbalance::trace::paraver::import(&text).unwrap();
    assert_eq!(back.len(), r.timelines.len());
    for (orig, re) in r.timelines.iter().zip(&back) {
        assert_eq!(orig.intervals(), re.intervals());
    }
}

#[test]
fn run_metrics_are_consistent_with_timelines() {
    let cfg = MetBenchConfig::tiny();
    let progs = cfg.programs();
    let r = execute(StaticRun::new(&progs, cfg.placement())).unwrap();
    for t in &r.timelines {
        t.check_invariants().unwrap();
    }
    let recomputed = mtbalance::RunMetrics::from_timelines(&r.timelines);
    assert_eq!(recomputed, r.metrics);
    assert_eq!(
        r.timelines.iter().map(|t| t.end()).max().unwrap(),
        r.total_cycles
    );
}
