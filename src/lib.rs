//! # mtbalance — balancing HPC applications through smart allocation of
//! resources in MT processors
//!
//! A from-scratch Rust reproduction of Boneti, Gioiosa, Cazorla, Corbalan,
//! Labarta & Valero, *"Balancing HPC Applications Through Smart Allocation
//! of Resources in MT Processors"* (IPDPS 2008): an IBM-POWER5-like SMT
//! processor model with the hardware thread-priority mechanism, a
//! Linux-like OS layer with the paper's kernel patch, an MPI-like runtime
//! and discrete-event system simulator, the three evaluation workloads
//! (MetBench, BT-MZ, SIESTA), and the balancing policies themselves —
//! static (the paper's experiments) and dynamic (its proposed future
//! work).
//!
//! ## Quick start
//!
//! ```
//! use mtbalance::{execute, StaticRun, PrioritySetting, CtxAddr};
//! use mtbalance::{ProgramBuilder, WorkSpec, Workload, WorkloadProfile, StreamSpec};
//!
//! // Two ranks sharing one SMT core; rank 0 has 3x the work.
//! let load = Workload::with_profile(
//!     "solver", StreamSpec::balanced(1), WorkloadProfile::new(2.8, 0.05, 0.05));
//! let prog = |w: u64| ProgramBuilder::new()
//!     .compute(WorkSpec::new(load.clone(), w)).barrier().build();
//! let programs = vec![prog(3_000_000), prog(1_000_000)];
//! let placement = vec![CtxAddr::from_cpu(0), CtxAddr::from_cpu(1)];
//!
//! // Reference: both at MEDIUM. Balanced: boost the bottleneck.
//! let reference = execute(StaticRun::new(&programs, placement.clone())).unwrap();
//! let balanced = execute(
//!     StaticRun::new(&programs, placement)
//!         .with_priorities(vec![PrioritySetting::ProcFs(5), PrioritySetting::ProcFs(4)]),
//! ).unwrap();
//! assert!(balanced.total_cycles < reference.total_cycles);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure.

#![forbid(unsafe_code)]

// Full sub-crate access under stable names.
pub use mtb_core as balance;
pub use mtb_mpisim as mpi;
pub use mtb_oskernel as os;
pub use mtb_smtsim as smt;
pub use mtb_trace as trace;
pub use mtb_workloads as workloads;

// The common API surface, flattened for convenience.
pub use mtb_core::analysis::{characterize, render_case_table, CaseRow};
pub use mtb_core::balance::{execute, execute_with, StaticRun};
pub use mtb_core::dynamic::{DynamicBalancer, DynamicConfig};
pub use mtb_core::mapper::pair_by_load;
pub use mtb_core::paper_cases;
pub use mtb_core::policy::PrioritySetting;
pub use mtb_core::predictor::{best_priority_pair, predict_makespan, predict_pair};
pub use mtb_core::redistribution;
pub use mtb_mpisim::engine::{Engine, Observer, RankWindow, RunResult, SimConfig};
pub use mtb_mpisim::program::{Program, ProgramBuilder, TracePhase, WorkSpec};
pub use mtb_oskernel::{CtxAddr, KernelConfig, Machine, NoiseSource, Topology, WaitPolicy};
pub use mtb_smtsim::model::{Workload, WorkloadProfile};
pub use mtb_smtsim::{HwPriority, StreamSpec};
pub use mtb_trace::{cycles_to_seconds, render_gantt, GanttConfig, RunMetrics, Table};
